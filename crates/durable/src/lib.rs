//! Warehouse durability: write-ahead log and quiescent checkpoints.
//!
//! The paper's recovery story (§4) treats a warehouse restart as total
//! amnesia: every view degrades and re-derives itself through a full
//! RV-style resync against its source — `O(|view|)` source traffic per
//! crash. This crate gives the warehouse a disk: an append-only,
//! length-prefixed, checksummed **write-ahead log** of committed
//! maintenance events per source channel, plus periodic **checkpoints**
//! of view bags and session state cut at quiescent points, so a crashed
//! warehouse restarts from `checkpoint + log tail` and only asks the
//! source for what was genuinely in flight — `O(updates since
//! checkpoint)` traffic instead.
//!
//! Design in one paragraph: the warehouse's per-source processing is
//! single-threaded and deterministic (sequential global query ids,
//! deterministic maintainer emissions), so a redo log of the *inputs* —
//! update notifications, query answers (by global id), epoch bumps — is
//! enough: replaying them through the ordinary `on_update`/`on_answer`/
//! `on_reset` paths re-derives every view bag, every session route and
//! every id exactly, and the outbound queries regenerated during replay
//! are discarded (they were already on the wire before the crash).
//! Checkpoints are only cut when the source channel is quiescent
//! (`UQS = ∅`, nothing pending), which keeps them to view bags +
//! auxiliary bags + a handful of counters — no in-flight compensation
//! state ever needs serializing.
//!
//! Frames reuse the `eca-wire` codec discipline: `[u32 len][u64
//! fnv1a(body)][body]`, capped at [`eca_wire::MAX_FRAME_LEN`]. A torn or corrupt
//! tail (partial final write, bit rot) is detected by the length/
//! checksum pair and the scan stops cleanly at the last valid record —
//! see [`Wal::scan`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod record;
mod wal;

use std::path::PathBuf;

pub use checkpoint::{AuxCheckpoint, SourceCheckpoint, ViewCheckpoint};
pub use record::WalRecord;
pub use wal::{Wal, WalScan};

use eca_wire::DecodeError;

/// When the WAL forces its buffered records to disk.
///
/// The buffer is the crash window: records not yet flushed are lost
/// with the process. Recovery is correct under every policy — the
/// incremental-resync protocol re-covers lost records from the source —
/// but the amount of resync traffic after a crash grows with the
/// window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Flush and sync after every record: zero-record crash window,
    /// one `fdatasync` per maintenance event.
    PerRecord,
    /// Flush and sync every `n` records: bounded window, amortized
    /// syncs.
    PerBatch(u64),
    /// Flush and sync only when a checkpoint is cut: everything since
    /// the last checkpoint may need re-fetching after a crash.
    OnCheckpoint,
}

/// Durability configuration handed to a warehouse runtime.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding one `source-<i>.wal` / `source-<i>.ckpt` pair
    /// per source channel.
    pub dir: PathBuf,
    /// When WAL records are forced to disk.
    pub fsync: FsyncPolicy,
    /// Logged events per source between checkpoint attempts. A
    /// checkpoint is only *cut* at the first quiescent point at or
    /// after the threshold, so bursts of in-flight compensation defer
    /// it harmlessly.
    pub checkpoint_every: u64,
}

impl DurabilityConfig {
    /// A config with the given directory, per-record fsync, and a
    /// checkpoint every 64 events.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::PerRecord,
            checkpoint_every: 64,
        }
    }

    /// Replace the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Replace the checkpoint cadence.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Path of source `i`'s write-ahead log for checkpoint generation
    /// `gen`. The generation is baked into the file name so a crash
    /// between "checkpoint written" and "old log emptied" can never
    /// replay pre-checkpoint records against the new checkpoint: the
    /// checkpoint names the only log it pairs with.
    pub fn wal_path(&self, source: usize, gen: u64) -> PathBuf {
        self.dir.join(format!("source-{source}.g{gen}.wal"))
    }

    /// Path of source `i`'s checkpoint.
    pub fn checkpoint_path(&self, source: usize) -> PathBuf {
        self.dir.join(format!("source-{source}.ckpt"))
    }

    /// Delete every WAL file of source `i` whose generation is not
    /// `keep` — stale logs superseded by a newer checkpoint. Missing
    /// files and unreadable directories are ignored (cleanup is
    /// best-effort; correctness never depends on it).
    pub fn remove_stale_wals(&self, source: usize, keep: u64) {
        let prefix = format!("source-{source}.g");
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(gen) = rest.strip_suffix(".wal") else {
                continue;
            };
            if gen.parse::<u64>().is_ok_and(|g| g != keep) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Errors raised by the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// The filesystem refused.
    Io(std::io::Error),
    /// A record or checkpoint body failed to decode *after* passing its
    /// checksum — a logic error or version skew, never silently
    /// replayed.
    Decode(DecodeError),
    /// A record exceeded [`eca_wire::MAX_FRAME_LEN`] at append time.
    RecordTooLarge {
        /// The offending encoded length.
        len: usize,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurableError::Decode(e) => write!(f, "durable record decode error: {e}"),
            DurableError::RecordTooLarge { len } => {
                write!(f, "durable record of {len} bytes exceeds the frame cap")
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Decode(e) => Some(e),
            DurableError::RecordTooLarge { .. } => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<DecodeError> for DurableError {
    fn from(e: DecodeError) -> Self {
        DurableError::Decode(e)
    }
}
