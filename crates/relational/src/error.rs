//! Error types for the relational layer.

use std::fmt;

/// Errors raised while validating or evaluating relational expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A tuple's arity did not match the schema it was used with.
    ArityMismatch {
        /// Relation or expression the tuple was destined for.
        context: String,
        /// Arity required by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// The attribute that failed to resolve.
        attribute: String,
        /// The schema it was resolved against (attribute list).
        schema: String,
    },
    /// A positional reference was out of range.
    PositionOutOfRange {
        /// The out-of-range position.
        position: usize,
        /// The schema arity.
        arity: usize,
    },
    /// Two schemas that had to agree (e.g. for union) did not.
    SchemaMismatch {
        /// Left schema description.
        left: String,
        /// Right schema description.
        right: String,
    },
    /// A key operation was requested on a relation without a declared key.
    MissingKey {
        /// The relation lacking key metadata.
        relation: String,
    },
    /// A predicate compared incompatible operand types.
    TypeMismatch {
        /// Human-readable description of the comparison.
        detail: String,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::ArityMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch in {context}: expected {expected}, got {actual}"
            ),
            RelationalError::UnknownAttribute { attribute, schema } => {
                write!(f, "unknown attribute {attribute:?} in schema [{schema}]")
            }
            RelationalError::PositionOutOfRange { position, arity } => {
                write!(f, "position {position} out of range for arity {arity}")
            }
            RelationalError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: [{left}] vs [{right}]")
            }
            RelationalError::MissingKey { relation } => {
                write!(f, "relation {relation} has no declared key")
            }
            RelationalError::TypeMismatch { detail } => {
                write!(f, "type mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationalError::ArityMismatch {
            context: "r1".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("r1"));
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&RelationalError::MissingKey {
            relation: "r".into(),
        });
    }
}
