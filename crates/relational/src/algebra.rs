//! Relational operators over signed bags with the paper's sign-propagation
//! rules (§4.1): selection and projection preserve signs; cross products
//! combine them multiplicatively. In the counting formulation these rules
//! fall out of ordinary `i64` arithmetic on replication counts.

use crate::bag::SignedBag;
use crate::error::RelationalError;
use crate::predicate::Predicate;
use crate::tuple::Tuple;

/// `σ_pred(input)` — keep tuples satisfying `pred`, signs unchanged.
///
/// # Errors
/// Propagates predicate evaluation errors (bad column references).
pub fn select(input: &SignedBag, pred: &Predicate) -> Result<SignedBag, RelationalError> {
    if matches!(pred, Predicate::True) {
        return Ok(input.clone());
    }
    let mut out = SignedBag::new();
    for (tuple, count) in input.iter() {
        if pred.eval(tuple)? {
            out.add(tuple.clone(), count);
        }
    }
    Ok(out)
}

/// `π_positions(input)` — project onto positions, retaining duplicates:
/// counts of tuples that collapse to the same projection accumulate.
///
/// Positions are validated once against the bag's arity (all tuples in a
/// bag share one schema), not per tuple.
///
/// # Errors
/// Returns [`RelationalError::PositionOutOfRange`] on an invalid position.
pub fn project(input: &SignedBag, positions: &[usize]) -> Result<SignedBag, RelationalError> {
    let Some((first, _)) = input.iter().next() else {
        return Ok(SignedBag::new());
    };
    let arity = first.arity();
    if let Some(&position) = positions.iter().find(|&&p| p >= arity) {
        return Err(RelationalError::PositionOutOfRange { position, arity });
    }
    let mut out = SignedBag::new();
    for (tuple, count) in input.iter() {
        out.add(tuple.project(positions), count);
    }
    Ok(out)
}

/// `left × right` — cross product; counts (and therefore signs) multiply.
#[must_use]
pub fn cross(left: &SignedBag, right: &SignedBag) -> SignedBag {
    let mut out = SignedBag::new();
    for (lt, lc) in left.iter() {
        for (rt, rc) in right.iter() {
            out.add(lt.concat(rt), lc * rc);
        }
    }
    out
}

/// Hash equi-join: `left ⋈ right` on `left[left_col] = right[right_col]`,
/// output tuples are concatenations. Equivalent to
/// `σ_{l=r}(left × right)` but avoids materializing the product.
#[must_use]
pub fn equijoin(
    left: &SignedBag,
    right: &SignedBag,
    left_col: usize,
    right_col: usize,
) -> SignedBag {
    equijoin_multi(left, right, &[(left_col, right_col)])
}

/// Total number of tuple occurrences in a bag, counting duplicates and
/// pending deletions alike — the real cost of hashing or probing it.
fn total_occurrences(bag: &SignedBag) -> u64 {
    bag.pos_len() + bag.neg_len()
}

/// Hash equi-join on a composite key: `left ⋈ right` on
/// `∧ left[l_i] = right[r_i]` for every `(l_i, r_i)` in `keys`.
///
/// Output tuples are left-right concatenations regardless of which side
/// builds the hash table. The build side is the one with fewer total
/// tuple *occurrences* (duplicates included): `distinct_len` undercounts
/// skewed bags where one distinct tuple carries a large replication count,
/// and the hash table stores every occurrence.
///
/// Tuples missing any key column (arity too small) join nothing, matching
/// `σ(left × right)` semantics where the equality cannot hold.
#[must_use]
pub fn equijoin_multi(left: &SignedBag, right: &SignedBag, keys: &[(usize, usize)]) -> SignedBag {
    use std::collections::HashMap;
    if keys.is_empty() {
        return cross(left, right);
    }
    let build_is_left = total_occurrences(left) <= total_occurrences(right);
    let (build, probe) = if build_is_left {
        (left, right)
    } else {
        (right, left)
    };
    fn key_of<'a>(
        t: &'a Tuple,
        keys: &[(usize, usize)],
        left_side: bool,
    ) -> Option<Vec<&'a crate::value::Value>> {
        keys.iter()
            .map(|&(l, r)| t.get(if left_side { l } else { r }))
            .collect()
    }
    let mut table: HashMap<Vec<&crate::value::Value>, Vec<(&Tuple, i64)>> = HashMap::new();
    for (t, c) in build.iter() {
        if let Some(key) = key_of(t, keys, build_is_left) {
            table.entry(key).or_default().push((t, c));
        }
    }
    let mut out = SignedBag::new();
    for (pt, pc) in probe.iter() {
        let Some(key) = key_of(pt, keys, !build_is_left) else {
            continue;
        };
        if let Some(matches) = table.get(&key) {
            for (bt, bc) in matches {
                let joined = if build_is_left {
                    bt.concat(pt)
                } else {
                    pt.concat(bt)
                };
                out.add(joined, bc * pc);
            }
        }
    }
    out
}

/// Evaluate a full SPJ term `π_proj(σ_cond(r1 × r2 × … × rn))`.
///
/// This is the *planned* path (see [`crate::planner`]): single-relation
/// conjuncts of `cond` are pushed down into pre-selections on each input,
/// cross-input equalities become (composite) hash-join keys, the join
/// order is chosen greedily by estimated cardinality, and only the
/// residual conjuncts not consumed by pushdown or joins are re-applied
/// at the end. Answers are identical to [`spj_naive`].
///
/// # Errors
/// Propagates predicate and projection errors.
pub fn spj(
    inputs: &[&SignedBag],
    cond: &Predicate,
    proj: &[usize],
) -> Result<SignedBag, RelationalError> {
    crate::planner::spj_planned(inputs, cond, proj)
}

/// Naive oracle for [`spj`]: materialize the full cross product, then
/// select, then project. Exponential in the number of inputs — kept only
/// as the reference semantics for differential tests and benchmarks.
///
/// # Errors
/// Propagates predicate and projection errors.
pub fn spj_naive(
    inputs: &[&SignedBag],
    cond: &Predicate,
    proj: &[usize],
) -> Result<SignedBag, RelationalError> {
    let Some(first) = inputs.first() else {
        let selected = select(&SignedBag::singleton(Tuple::ints([])), cond)?;
        return project(&selected, proj);
    };
    let mut acc = (*first).clone();
    for input in &inputs[1..] {
        acc = cross(&acc, input);
    }
    let selected = select(&acc, cond)?;
    project(&selected, proj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::ints(vals.iter().copied())
    }

    #[test]
    fn select_preserves_signs() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 2);
        b.add(t(&[2]), -1);
        b.add(t(&[3]), 1);
        let s = select(&b, &Predicate::col_const(0, CmpOp::Le, 2)).unwrap();
        assert_eq!(s.count(&t(&[1])), 2);
        assert_eq!(s.count(&t(&[2])), -1);
        assert_eq!(s.count(&t(&[3])), 0);
    }

    #[test]
    fn select_true_is_identity() {
        let b = SignedBag::from_tuples([t(&[1]), t(&[2])]);
        assert_eq!(select(&b, &Predicate::True).unwrap(), b);
    }

    #[test]
    fn project_accumulates_duplicates() {
        let b = SignedBag::from_tuples([t(&[1, 2]), t(&[1, 3])]);
        let p = project(&b, &[0]).unwrap();
        assert_eq!(p.count(&t(&[1])), 2);
    }

    #[test]
    fn project_cancels_opposite_signs() {
        let mut b = SignedBag::new();
        b.add(t(&[1, 2]), 1);
        b.add(t(&[1, 3]), -1);
        let p = project(&b, &[0]).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn cross_multiplies_counts_and_signs() {
        let mut l = SignedBag::new();
        l.add(t(&[1]), 2);
        let mut r = SignedBag::new();
        r.add(t(&[9]), -1);
        let c = cross(&l, &r);
        // (+2) * (−1) = −2 : minus sign carries through, duplicates kept.
        assert_eq!(c.count(&t(&[1, 9])), -2);
    }

    #[test]
    fn cross_with_empty_is_empty() {
        let l = SignedBag::from_tuples([t(&[1])]);
        assert!(cross(&l, &SignedBag::new()).is_empty());
        assert!(cross(&SignedBag::new(), &l).is_empty());
    }

    #[test]
    fn cross_distributes_over_plus() {
        // (a + b) × c == a×c + b×c
        let a = SignedBag::from_tuples([t(&[1])]);
        let mut b = SignedBag::new();
        b.add(t(&[2]), -1);
        let c = SignedBag::from_tuples([t(&[7]), t(&[8])]);
        let lhs = cross(&a.plus(&b), &c);
        let rhs = cross(&a, &c).plus(&cross(&b, &c));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn equijoin_matches_cross_select() {
        let r1 = SignedBag::from_tuples([t(&[1, 2]), t(&[4, 2]), t(&[5, 9])]);
        let mut r2 = SignedBag::new();
        r2.add(t(&[2, 3]), 1);
        r2.add(t(&[2, 4]), -1);
        r2.add(t(&[9, 9]), 1);
        let joined = equijoin(&r1, &r2, 1, 0);
        let expected = select(&cross(&r1, &r2), &Predicate::col_eq(1, 2)).unwrap();
        assert_eq!(joined, expected);
    }

    #[test]
    fn equijoin_build_side_choice_is_transparent() {
        // Force each side to be the build side and compare.
        let small = SignedBag::from_tuples([t(&[2, 3])]);
        let large = SignedBag::from_tuples([t(&[1, 2]), t(&[4, 2]), t(&[6, 7])]);
        let a = equijoin(&large, &small, 1, 0);
        let b = select(&cross(&large, &small), &Predicate::col_eq(1, 2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn equijoin_skewed_duplicates_match_cross_select() {
        // One distinct tuple with a huge replication count on the left:
        // `distinct_len` would call the left side "smaller" (1 distinct vs
        // 3), but by total occurrences it is far larger. Whichever side
        // builds, the answer must equal σ(×) with multiplied counts.
        let mut skewed = SignedBag::new();
        skewed.add(t(&[7, 2]), 1000);
        skewed.add(t(&[8, 9]), -500);
        let flat = SignedBag::from_tuples([t(&[2, 1]), t(&[2, 2]), t(&[3, 3])]);
        let joined = equijoin(&skewed, &flat, 1, 0);
        let expected = select(&cross(&skewed, &flat), &Predicate::col_eq(1, 2)).unwrap();
        assert_eq!(joined, expected);
        assert_eq!(joined.count(&t(&[7, 2, 2, 1])), 1000);
        // And flipped operand order as well.
        let joined_rev = equijoin(&flat, &skewed, 0, 1);
        let expected_rev = select(&cross(&flat, &skewed), &Predicate::col_eq(0, 3)).unwrap();
        assert_eq!(joined_rev, expected_rev);
    }

    #[test]
    fn equijoin_multi_composite_key_matches_cross_select() {
        let r1 = SignedBag::from_tuples([t(&[1, 2, 3]), t(&[1, 2, 4]), t(&[9, 9, 9])]);
        let mut r2 = SignedBag::new();
        r2.add(t(&[1, 2, 7]), 2);
        r2.add(t(&[1, 5, 7]), 1);
        r2.add(t(&[9, 9, 0]), -1);
        let joined = equijoin_multi(&r1, &r2, &[(0, 0), (1, 1)]);
        let cond = Predicate::col_eq(0, 3).and(Predicate::col_eq(1, 4));
        let expected = select(&cross(&r1, &r2), &cond).unwrap();
        assert_eq!(joined, expected);
        assert_eq!(joined.count(&t(&[1, 2, 3, 1, 2, 7])), 2);
        assert_eq!(joined.count(&t(&[9, 9, 9, 9, 9, 0])), -1);
    }

    #[test]
    fn equijoin_multi_empty_key_is_cross() {
        let l = SignedBag::from_tuples([t(&[1])]);
        let r = SignedBag::from_tuples([t(&[2]), t(&[3])]);
        assert_eq!(equijoin_multi(&l, &r, &[]), cross(&l, &r));
    }

    #[test]
    fn equijoin_multi_short_tuples_join_nothing() {
        // A key column beyond a tuple's arity can never satisfy the
        // equality, so that tuple silently joins nothing.
        let l = SignedBag::from_tuples([t(&[1])]);
        let r = SignedBag::from_tuples([t(&[1, 5])]);
        assert!(equijoin_multi(&l, &r, &[(1, 0)]).is_empty());
    }

    #[test]
    fn project_rejects_out_of_range_once() {
        let b = SignedBag::from_tuples([t(&[1, 2]), t(&[3, 4])]);
        let err = project(&b, &[0, 2]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::PositionOutOfRange {
                position: 2,
                arity: 2
            }
        ));
        // Empty bag: nothing to validate against, projection is empty.
        assert!(project(&SignedBag::new(), &[17]).unwrap().is_empty());
    }

    #[test]
    fn spj_paper_example_1() {
        // V = π_W(r1 ⋈ r2) with r1 = ([1,2]), r2 = ([2,4]).
        let r1 = SignedBag::from_tuples([t(&[1, 2])]);
        let r2 = SignedBag::from_tuples([t(&[2, 4])]);
        let v = spj(&[&r1, &r2], &Predicate::col_eq(1, 2), &[0]).unwrap();
        assert_eq!(v, SignedBag::from_tuples([t(&[1])]));
    }

    #[test]
    fn spj_three_relations() {
        // V = π_W(r1 ⋈X r2 ⋈Y r3), Example 4 final state.
        let r1 = SignedBag::from_tuples([t(&[1, 2]), t(&[4, 2])]);
        let r2 = SignedBag::from_tuples([t(&[2, 5])]);
        let r3 = SignedBag::from_tuples([t(&[5, 3])]);
        let cond = Predicate::col_eq(1, 2).and(Predicate::col_eq(3, 4));
        let v = spj(&[&r1, &r2, &r3], &cond, &[0]).unwrap();
        assert_eq!(v, SignedBag::from_tuples([t(&[1]), t(&[4])]));
    }

    #[test]
    fn spj_empty_input_list_yields_unit() {
        let v = spj(&[], &Predicate::True, &[]).unwrap();
        assert_eq!(v.pos_len(), 1);
    }

    #[test]
    fn spj_short_circuits_on_empty() {
        let r1 = SignedBag::new();
        let r2 = SignedBag::from_tuples([t(&[1])]);
        let v = spj(&[&r1, &r2], &Predicate::True, &[0]).unwrap();
        assert!(v.is_empty());
    }
}
