//! Relational operators over signed bags with the paper's sign-propagation
//! rules (§4.1): selection and projection preserve signs; cross products
//! combine them multiplicatively. In the counting formulation these rules
//! fall out of ordinary `i64` arithmetic on replication counts.

use crate::bag::SignedBag;
use crate::error::RelationalError;
use crate::predicate::Predicate;
use crate::tuple::Tuple;

/// `σ_pred(input)` — keep tuples satisfying `pred`, signs unchanged.
///
/// # Errors
/// Propagates predicate evaluation errors (bad column references).
pub fn select(input: &SignedBag, pred: &Predicate) -> Result<SignedBag, RelationalError> {
    if matches!(pred, Predicate::True) {
        return Ok(input.clone());
    }
    let mut out = SignedBag::new();
    for (tuple, count) in input.iter() {
        if pred.eval(tuple)? {
            out.add(tuple.clone(), count);
        }
    }
    Ok(out)
}

/// `π_positions(input)` — project onto positions, retaining duplicates:
/// counts of tuples that collapse to the same projection accumulate.
///
/// # Errors
/// Returns [`RelationalError::PositionOutOfRange`] on an invalid position.
pub fn project(input: &SignedBag, positions: &[usize]) -> Result<SignedBag, RelationalError> {
    let mut out = SignedBag::new();
    for (tuple, count) in input.iter() {
        for &p in positions {
            if p >= tuple.arity() {
                return Err(RelationalError::PositionOutOfRange {
                    position: p,
                    arity: tuple.arity(),
                });
            }
        }
        out.add(tuple.project(positions), count);
    }
    Ok(out)
}

/// `left × right` — cross product; counts (and therefore signs) multiply.
#[must_use]
pub fn cross(left: &SignedBag, right: &SignedBag) -> SignedBag {
    let mut out = SignedBag::new();
    for (lt, lc) in left.iter() {
        for (rt, rc) in right.iter() {
            out.add(lt.concat(rt), lc * rc);
        }
    }
    out
}

/// Hash equi-join: `left ⋈ right` on `left[left_col] = right[right_col]`,
/// output tuples are concatenations. Equivalent to
/// `σ_{l=r}(left × right)` but avoids materializing the product.
#[must_use]
pub fn equijoin(
    left: &SignedBag,
    right: &SignedBag,
    left_col: usize,
    right_col: usize,
) -> SignedBag {
    use std::collections::HashMap;
    // Build on the smaller side.
    let (build, probe, build_col, probe_col, build_is_left) =
        if left.distinct_len() <= right.distinct_len() {
            (left, right, left_col, right_col, true)
        } else {
            (right, left, right_col, left_col, false)
        };
    let mut table: HashMap<&crate::value::Value, Vec<(&Tuple, i64)>> = HashMap::new();
    for (t, c) in build.iter() {
        if let Some(v) = t.get(build_col) {
            table.entry(v).or_default().push((t, c));
        }
    }
    let mut out = SignedBag::new();
    for (pt, pc) in probe.iter() {
        let Some(v) = pt.get(probe_col) else { continue };
        if let Some(matches) = table.get(v) {
            for (bt, bc) in matches {
                let joined = if build_is_left {
                    bt.concat(pt)
                } else {
                    pt.concat(bt)
                };
                out.add(joined, bc * pc);
            }
        }
    }
    out
}

/// Evaluate a full SPJ term `π_proj(σ_cond(r1 × r2 × … × rn))`.
///
/// Conjunctive equality conditions are exploited as hash equi-joins while
/// accumulating the product left to right (column positions are preserved,
/// so `cond`/`proj` keep their product-relative meaning); the full `cond`
/// is re-applied at the end, which is idempotent on the equalities already
/// used and handles every residual conjunct/disjunct.
///
/// # Errors
/// Propagates predicate and projection errors.
pub fn spj(
    inputs: &[&SignedBag],
    cond: &Predicate,
    proj: &[usize],
) -> Result<SignedBag, RelationalError> {
    let Some(first) = inputs.first() else {
        let selected = select(&SignedBag::singleton(Tuple::ints([])), cond)?;
        return project(&selected, proj);
    };
    // The cross product with an empty relation is empty.
    if inputs.iter().any(|b| b.is_empty()) {
        return Ok(SignedBag::new());
    }
    // Arity of each input, inferred from any tuple (all inputs non-empty).
    let arities: Vec<usize> = inputs
        .iter()
        .map(|b| b.iter().next().map(|(t, _)| t.arity()).unwrap_or(0))
        .collect();
    let mut offsets = Vec::with_capacity(inputs.len());
    let mut total = 0usize;
    for &a in &arities {
        offsets.push(total);
        total += a;
    }

    let pairs = cond.equijoin_pairs();
    let mut acc = (*first).clone();
    for (i, input) in inputs.iter().enumerate().skip(1) {
        let lo = offsets[i];
        let hi = lo + arities[i];
        // Find an equality linking the accumulated columns to this input.
        let link = pairs.iter().find_map(|&(a, b)| {
            if a < lo && (lo..hi).contains(&b) {
                Some((a, b - lo))
            } else if b < lo && (lo..hi).contains(&a) {
                Some((b, a - lo))
            } else {
                None
            }
        });
        acc = match link {
            Some((acc_col, input_col)) => equijoin(&acc, input, acc_col, input_col),
            None => cross(&acc, input),
        };
        if acc.is_empty() {
            return Ok(SignedBag::new());
        }
    }
    let selected = select(&acc, cond)?;
    project(&selected, proj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::ints(vals.iter().copied())
    }

    #[test]
    fn select_preserves_signs() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 2);
        b.add(t(&[2]), -1);
        b.add(t(&[3]), 1);
        let s = select(&b, &Predicate::col_const(0, CmpOp::Le, 2)).unwrap();
        assert_eq!(s.count(&t(&[1])), 2);
        assert_eq!(s.count(&t(&[2])), -1);
        assert_eq!(s.count(&t(&[3])), 0);
    }

    #[test]
    fn select_true_is_identity() {
        let b = SignedBag::from_tuples([t(&[1]), t(&[2])]);
        assert_eq!(select(&b, &Predicate::True).unwrap(), b);
    }

    #[test]
    fn project_accumulates_duplicates() {
        let b = SignedBag::from_tuples([t(&[1, 2]), t(&[1, 3])]);
        let p = project(&b, &[0]).unwrap();
        assert_eq!(p.count(&t(&[1])), 2);
    }

    #[test]
    fn project_cancels_opposite_signs() {
        let mut b = SignedBag::new();
        b.add(t(&[1, 2]), 1);
        b.add(t(&[1, 3]), -1);
        let p = project(&b, &[0]).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn cross_multiplies_counts_and_signs() {
        let mut l = SignedBag::new();
        l.add(t(&[1]), 2);
        let mut r = SignedBag::new();
        r.add(t(&[9]), -1);
        let c = cross(&l, &r);
        // (+2) * (−1) = −2 : minus sign carries through, duplicates kept.
        assert_eq!(c.count(&t(&[1, 9])), -2);
    }

    #[test]
    fn cross_with_empty_is_empty() {
        let l = SignedBag::from_tuples([t(&[1])]);
        assert!(cross(&l, &SignedBag::new()).is_empty());
        assert!(cross(&SignedBag::new(), &l).is_empty());
    }

    #[test]
    fn cross_distributes_over_plus() {
        // (a + b) × c == a×c + b×c
        let a = SignedBag::from_tuples([t(&[1])]);
        let mut b = SignedBag::new();
        b.add(t(&[2]), -1);
        let c = SignedBag::from_tuples([t(&[7]), t(&[8])]);
        let lhs = cross(&a.plus(&b), &c);
        let rhs = cross(&a, &c).plus(&cross(&b, &c));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn equijoin_matches_cross_select() {
        let r1 = SignedBag::from_tuples([t(&[1, 2]), t(&[4, 2]), t(&[5, 9])]);
        let mut r2 = SignedBag::new();
        r2.add(t(&[2, 3]), 1);
        r2.add(t(&[2, 4]), -1);
        r2.add(t(&[9, 9]), 1);
        let joined = equijoin(&r1, &r2, 1, 0);
        let expected = select(&cross(&r1, &r2), &Predicate::col_eq(1, 2)).unwrap();
        assert_eq!(joined, expected);
    }

    #[test]
    fn equijoin_build_side_choice_is_transparent() {
        // Force each side to be the build side and compare.
        let small = SignedBag::from_tuples([t(&[2, 3])]);
        let large = SignedBag::from_tuples([t(&[1, 2]), t(&[4, 2]), t(&[6, 7])]);
        let a = equijoin(&large, &small, 1, 0);
        let b = select(&cross(&large, &small), &Predicate::col_eq(1, 2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn spj_paper_example_1() {
        // V = π_W(r1 ⋈ r2) with r1 = ([1,2]), r2 = ([2,4]).
        let r1 = SignedBag::from_tuples([t(&[1, 2])]);
        let r2 = SignedBag::from_tuples([t(&[2, 4])]);
        let v = spj(&[&r1, &r2], &Predicate::col_eq(1, 2), &[0]).unwrap();
        assert_eq!(v, SignedBag::from_tuples([t(&[1])]));
    }

    #[test]
    fn spj_three_relations() {
        // V = π_W(r1 ⋈X r2 ⋈Y r3), Example 4 final state.
        let r1 = SignedBag::from_tuples([t(&[1, 2]), t(&[4, 2])]);
        let r2 = SignedBag::from_tuples([t(&[2, 5])]);
        let r3 = SignedBag::from_tuples([t(&[5, 3])]);
        let cond = Predicate::col_eq(1, 2).and(Predicate::col_eq(3, 4));
        let v = spj(&[&r1, &r2, &r3], &cond, &[0]).unwrap();
        assert_eq!(v, SignedBag::from_tuples([t(&[1]), t(&[4])]));
    }

    #[test]
    fn spj_empty_input_list_yields_unit() {
        let v = spj(&[], &Predicate::True, &[]).unwrap();
        assert_eq!(v.pos_len(), 1);
    }

    #[test]
    fn spj_short_circuits_on_empty() {
        let r1 = SignedBag::new();
        let r2 = SignedBag::from_tuples([t(&[1])]);
        let v = spj(&[&r1, &r2], &Predicate::True, &[0]).unwrap();
        assert!(v.is_empty());
    }
}
