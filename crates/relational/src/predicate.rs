//! Selection conditions for SPJ views (paper §4: `cond` is a boolean
//! expression over attributes of the cross product).

use std::fmt;

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One side of a comparison: a column position or a constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operand {
    /// Attribute at this position of the input tuple.
    Column(usize),
    /// A literal value.
    Const(Value),
}

impl Operand {
    fn resolve<'a>(&'a self, tuple: &'a Tuple) -> Result<&'a Value, RelationalError> {
        match self {
            Operand::Column(i) => tuple.get(*i).ok_or(RelationalError::PositionOutOfRange {
                position: *i,
                arity: tuple.arity(),
            }),
            Operand::Const(v) => Ok(v),
        }
    }
}

/// A boolean selection predicate over tuples.
///
/// Predicates refer to attributes *positionally*; use
/// [`Predicate::named_cmp`] to build them from attribute names via a
/// schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Predicate {
    /// Always true (`σ_true` ≡ no selection).
    True,
    /// Always false.
    False,
    /// `lhs op rhs`.
    Cmp {
        /// Left operand.
        lhs: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: Operand,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Compare two columns.
    pub fn col_cmp(lhs: usize, op: CmpOp, rhs: usize) -> Predicate {
        Predicate::Cmp {
            lhs: Operand::Column(lhs),
            op,
            rhs: Operand::Column(rhs),
        }
    }

    /// Compare a column against a constant.
    pub fn col_const(lhs: usize, op: CmpOp, rhs: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            lhs: Operand::Column(lhs),
            op,
            rhs: Operand::Const(rhs.into()),
        }
    }

    /// Equality between two columns — the equi-join building block.
    pub fn col_eq(lhs: usize, rhs: usize) -> Predicate {
        Predicate::col_cmp(lhs, CmpOp::Eq, rhs)
    }

    /// Build a comparison between two named attributes of `schema`.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownAttribute`] on unresolved names.
    pub fn named_cmp(
        schema: &Schema,
        lhs: &str,
        op: CmpOp,
        rhs: &str,
    ) -> Result<Predicate, RelationalError> {
        Ok(Predicate::col_cmp(
            schema.position_of(lhs)?,
            op,
            schema.position_of(rhs)?,
        ))
    }

    /// Conjunction helper.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction helper.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::False, p) | (p, Predicate::False) => p,
            (a, b) => Predicate::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation helper.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            p => Predicate::Not(Box::new(p)),
        }
    }

    /// Evaluate the predicate on a tuple.
    ///
    /// # Errors
    /// Returns [`RelationalError::PositionOutOfRange`] if a column reference
    /// exceeds the tuple arity.
    pub fn eval(&self, tuple: &Tuple) -> Result<bool, RelationalError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Cmp { lhs, op, rhs } => {
                Ok(op.eval(lhs.resolve(tuple)?, rhs.resolve(tuple)?))
            }
            Predicate::And(a, b) => Ok(a.eval(tuple)? && b.eval(tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(tuple)? || b.eval(tuple)?),
            Predicate::Not(p) => Ok(!p.eval(tuple)?),
        }
    }

    /// Highest column position referenced, if any. Used to validate a
    /// predicate against a schema arity.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Cmp { lhs, rhs, .. } => {
                let l = match lhs {
                    Operand::Column(i) => Some(*i),
                    Operand::Const(_) => None,
                };
                let r = match rhs {
                    Operand::Column(i) => Some(*i),
                    Operand::Const(_) => None,
                };
                l.max(r)
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => a.max_column().max(b.max_column()),
            Predicate::Not(p) => p.max_column(),
        }
    }

    /// Collect all `(left, right)` column pairs joined by equality in the
    /// conjunctive skeleton of this predicate. Used by the planner to find
    /// equi-join opportunities.
    pub fn equijoin_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        self.collect_equijoins(&mut pairs);
        pairs
    }

    /// The conjuncts of the AND-skeleton, left to right. `Or`/`Not`
    /// subtrees are atomic conjuncts; `True` contributes nothing.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Predicate>) {
        match self {
            Predicate::True => {}
            Predicate::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            p => out.push(p),
        }
    }

    /// All column positions referenced, deduplicated and ascending.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = std::collections::BTreeSet::new();
        self.collect_columns(&mut cols);
        cols.into_iter().collect()
    }

    fn collect_columns(&self, cols: &mut std::collections::BTreeSet<usize>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Cmp { lhs, rhs, .. } => {
                for operand in [lhs, rhs] {
                    if let Operand::Column(i) = operand {
                        cols.insert(*i);
                    }
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(cols);
                b.collect_columns(cols);
            }
            Predicate::Not(p) => p.collect_columns(cols),
        }
    }

    /// Rewrite every column reference through `f`. Used by the planner
    /// to move a predicate between coordinate systems (product-relative
    /// vs. input-local vs. join-accumulator layouts).
    #[must_use]
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> Predicate {
        let map_operand = |o: &Operand| match o {
            Operand::Column(i) => Operand::Column(f(*i)),
            Operand::Const(v) => Operand::Const(v.clone()),
        };
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Cmp { lhs, op, rhs } => Predicate::Cmp {
                lhs: map_operand(lhs),
                op: *op,
                rhs: map_operand(rhs),
            },
            Predicate::And(a, b) => {
                Predicate::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Predicate::Or(a, b) => {
                Predicate::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Predicate::Not(p) => Predicate::Not(Box::new(p.map_columns(f))),
        }
    }

    fn collect_equijoins(&self, pairs: &mut Vec<(usize, usize)>) {
        match self {
            Predicate::Cmp {
                lhs: Operand::Column(a),
                op: CmpOp::Eq,
                rhs: Operand::Column(b),
            } => pairs.push((*a, *b)),
            Predicate::And(a, b) => {
                a.collect_equijoins(pairs);
                b.collect_equijoins(pairs);
            }
            _ => {}
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { lhs, op, rhs } => {
                let fmt_op = |o: &Operand, f: &mut fmt::Formatter<'_>| match o {
                    Operand::Column(i) => write!(f, "#{i}"),
                    Operand::Const(v) => write!(f, "{v:?}"),
                };
                fmt_op(lhs, f)?;
                write!(f, "{op}")?;
                fmt_op(rhs, f)
            }
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        let t = Tuple::ints([1, 2]);
        assert!(Predicate::col_cmp(0, CmpOp::Lt, 1).eval(&t).unwrap());
        assert!(!Predicate::col_cmp(0, CmpOp::Gt, 1).eval(&t).unwrap());
        assert!(Predicate::col_const(1, CmpOp::Eq, 2).eval(&t).unwrap());
        assert!(Predicate::col_const(1, CmpOp::Ne, 3).eval(&t).unwrap());
        assert!(Predicate::col_const(0, CmpOp::Le, 1).eval(&t).unwrap());
        assert!(Predicate::col_const(1, CmpOp::Ge, 2).eval(&t).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let t = Tuple::ints([5]);
        let p = Predicate::col_const(0, CmpOp::Gt, 0).and(Predicate::col_const(0, CmpOp::Lt, 10));
        assert!(p.eval(&t).unwrap());
        let q = Predicate::col_const(0, CmpOp::Gt, 9).or(Predicate::col_const(0, CmpOp::Lt, 1));
        assert!(!q.eval(&t).unwrap());
        assert!(q.not().eval(&t).unwrap());
    }

    #[test]
    fn simplification_identities() {
        assert_eq!(Predicate::True.and(Predicate::False), Predicate::False);
        assert_eq!(Predicate::False.or(Predicate::True), Predicate::True);
        assert_eq!(Predicate::True.not(), Predicate::False);
        let p = Predicate::col_eq(0, 1);
        assert_eq!(p.clone().not().not(), p);
    }

    #[test]
    fn out_of_range_column_errors() {
        let t = Tuple::ints([1]);
        assert!(Predicate::col_eq(0, 5).eval(&t).is_err());
    }

    #[test]
    fn named_cmp_resolves() {
        let s = Schema::new("r", &["W", "Z"]);
        let p = Predicate::named_cmp(&s, "W", CmpOp::Gt, "Z").unwrap();
        assert!(p.eval(&Tuple::ints([5, 1])).unwrap());
        assert!(!p.eval(&Tuple::ints([1, 5])).unwrap());
        assert!(Predicate::named_cmp(&s, "Q", CmpOp::Gt, "Z").is_err());
    }

    #[test]
    fn max_column_tracks_references() {
        assert_eq!(Predicate::True.max_column(), None);
        assert_eq!(Predicate::col_eq(1, 3).max_column(), Some(3));
        let p = Predicate::col_eq(0, 1).and(Predicate::col_const(7, CmpOp::Eq, 2));
        assert_eq!(p.max_column(), Some(7));
    }

    #[test]
    fn equijoin_pairs_found_in_conjunctions() {
        let p = Predicate::col_eq(1, 2)
            .and(Predicate::col_eq(3, 4))
            .and(Predicate::col_cmp(0, CmpOp::Gt, 5));
        assert_eq!(p.equijoin_pairs(), vec![(1, 2), (3, 4)]);
        // Disjunctions are not equi-join opportunities.
        let q = Predicate::col_eq(1, 2).or(Predicate::col_eq(3, 4));
        assert!(q.equijoin_pairs().is_empty());
    }

    #[test]
    fn display_round() {
        let p = Predicate::col_cmp(0, CmpOp::Gt, 3).and(Predicate::col_const(1, CmpOp::Eq, 5));
        assert_eq!(p.to_string(), "(#0>#3 AND #1=5)");
    }

    #[test]
    fn mixed_type_comparison_uses_total_order() {
        // Ints sort before strings in the Value order.
        let t = Tuple::new([Value::Int(1), Value::str("a")]);
        assert!(Predicate::col_cmp(0, CmpOp::Lt, 1).eval(&t).unwrap());
    }
}
