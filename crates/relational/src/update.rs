//! Base-relation updates (paper §1.1 / §4.1).
//!
//! Sources report single-tuple insertions and deletions. Modifications are
//! treated as a deletion followed by an insertion (paper §4.1).

use std::fmt;

use crate::tuple::{Sign, SignedTuple, Tuple};

/// The kind of a base-relation update.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UpdateKind {
    /// `insert(r, t)`
    Insert,
    /// `delete(r, t)`
    Delete,
}

/// A single-tuple update against a named base relation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Update {
    /// Name of the updated base relation.
    pub relation: String,
    /// Insert or delete.
    pub kind: UpdateKind,
    /// The inserted/deleted tuple (the paper's `tuple(U)`).
    pub tuple: Tuple,
}

impl Update {
    /// `insert(relation, tuple)`.
    pub fn insert(relation: impl Into<String>, tuple: Tuple) -> Self {
        Update {
            relation: relation.into(),
            kind: UpdateKind::Insert,
            tuple,
        }
    }

    /// `delete(relation, tuple)`.
    pub fn delete(relation: impl Into<String>, tuple: Tuple) -> Self {
        Update {
            relation: relation.into(),
            kind: UpdateKind::Delete,
            tuple,
        }
    }

    /// The signed tuple to substitute into queries: `+t` for inserts,
    /// `−t` for deletes (paper §4.1).
    pub fn signed_tuple(&self) -> SignedTuple {
        SignedTuple {
            sign: self.sign(),
            tuple: self.tuple.clone(),
        }
    }

    /// The sign carried by this update.
    pub fn sign(&self) -> Sign {
        match self.kind {
            UpdateKind::Insert => Sign::Plus,
            UpdateKind::Delete => Sign::Minus,
        }
    }
}

impl fmt::Debug for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            UpdateKind::Insert => "insert",
            UpdateKind::Delete => "delete",
        };
        write!(f, "{op}({}, {:?})", self.relation, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_tuple_matches_kind() {
        let ins = Update::insert("r2", Tuple::ints([2, 3]));
        assert_eq!(ins.signed_tuple().sign, Sign::Plus);
        let del = Update::delete("r1", Tuple::ints([1, 2]));
        assert_eq!(del.signed_tuple().sign, Sign::Minus);
        assert_eq!(del.signed_tuple().tuple, Tuple::ints([1, 2]));
    }

    #[test]
    fn debug_matches_paper_notation() {
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        assert_eq!(format!("{u:?}"), "insert(r2, [2,3])");
    }
}
