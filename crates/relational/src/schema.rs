//! Relation schemas: attribute names and key metadata.

use std::fmt;
use std::sync::Arc;

use crate::error::RelationalError;

/// The schema of a relation: an ordered list of attribute names, plus
/// optional key information.
///
/// Key metadata drives the ECA-Key algorithm (paper §5.4), which requires
/// that the view contain a key attribute of every base relation.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(PartialEq, Eq)]
struct SchemaInner {
    relation: String,
    attrs: Vec<String>,
    key: Vec<usize>,
}

impl Schema {
    /// Build a schema with no key declared.
    pub fn new(relation: impl Into<String>, attrs: &[&str]) -> Self {
        Schema {
            inner: Arc::new(SchemaInner {
                relation: relation.into(),
                attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
                key: Vec::new(),
            }),
        }
    }

    /// Build a schema with the named attributes as key.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownAttribute`] if a key attribute is
    /// not in `attrs`.
    pub fn with_key(
        relation: impl Into<String>,
        attrs: &[&str],
        key: &[&str],
    ) -> Result<Self, RelationalError> {
        let relation = relation.into();
        let attrs: Vec<String> = attrs.iter().map(|s| (*s).to_owned()).collect();
        let mut key_positions = Vec::with_capacity(key.len());
        for k in key {
            let pos = attrs.iter().position(|a| a == k).ok_or_else(|| {
                RelationalError::UnknownAttribute {
                    attribute: (*k).to_owned(),
                    schema: attrs.join(","),
                }
            })?;
            key_positions.push(pos);
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                relation,
                attrs,
                key: key_positions,
            }),
        })
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.inner.relation
    }

    /// The attribute names in order.
    pub fn attrs(&self) -> &[String] {
        &self.inner.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.inner.attrs.len()
    }

    /// Positions of the key attributes (empty if no key declared).
    pub fn key_positions(&self) -> &[usize] {
        &self.inner.key
    }

    /// Whether a key is declared.
    pub fn has_key(&self) -> bool {
        !self.inner.key.is_empty()
    }

    /// Resolve an attribute name to its position.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownAttribute`] if absent.
    pub fn position_of(&self, attr: &str) -> Result<usize, RelationalError> {
        self.inner
            .attrs
            .iter()
            .position(|a| a == attr)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                attribute: attr.to_owned(),
                schema: self.inner.attrs.join(","),
            })
    }

    /// Resolve several attribute names to positions.
    ///
    /// # Errors
    /// Returns the first [`RelationalError::UnknownAttribute`] encountered.
    pub fn positions_of(&self, attrs: &[&str]) -> Result<Vec<usize>, RelationalError> {
        attrs.iter().map(|a| self.position_of(a)).collect()
    }

    /// Concatenated schema of a cross product `self × other`.
    ///
    /// Attribute names are qualified with the relation name when both sides
    /// share an attribute name, mirroring how a real engine disambiguates.
    /// The combined schema carries no key (keys of products are composite;
    /// ECAK only needs keys of the *base* relations, tracked separately).
    pub fn cross(&self, other: &Schema) -> Schema {
        let mut attrs: Vec<String> = Vec::with_capacity(self.arity() + other.arity());
        for a in self.attrs() {
            if other.attrs().contains(a) {
                attrs.push(format!("{}.{}", self.relation(), a));
            } else {
                attrs.push(a.clone());
            }
        }
        for a in other.attrs() {
            if self.attrs().contains(a) {
                attrs.push(format!("{}.{}", other.relation(), a));
            } else {
                attrs.push(a.clone());
            }
        }
        Schema {
            inner: Arc::new(SchemaInner {
                relation: format!("{}x{}", self.relation(), other.relation()),
                attrs,
                key: Vec::new(),
            }),
        }
    }

    /// Schema of a projection onto `positions`, validated against arity.
    ///
    /// # Errors
    /// Returns [`RelationalError::PositionOutOfRange`] on a bad position.
    pub fn project(&self, positions: &[usize]) -> Result<Schema, RelationalError> {
        for &p in positions {
            if p >= self.arity() {
                return Err(RelationalError::PositionOutOfRange {
                    position: p,
                    arity: self.arity(),
                });
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                relation: format!("pi({})", self.relation()),
                attrs: positions
                    .iter()
                    .map(|&p| self.inner.attrs[p].clone())
                    .collect(),
                key: Vec::new(),
            }),
        })
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.inner.relation)?;
        for (i, a) in self.inner.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if self.inner.key.contains(&i) {
                write!(f, "{a}*")?;
            } else {
                write!(f, "{a}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_resolve() {
        let s = Schema::new("r1", &["W", "X"]);
        assert_eq!(s.position_of("X").unwrap(), 1);
        assert!(s.position_of("Z").is_err());
        assert_eq!(s.positions_of(&["X", "W"]).unwrap(), vec![1, 0]);
    }

    #[test]
    fn keys_are_validated() {
        let s = Schema::with_key("r1", &["W", "X"], &["W"]).unwrap();
        assert!(s.has_key());
        assert_eq!(s.key_positions(), &[0]);
        assert!(Schema::with_key("r1", &["W", "X"], &["Q"]).is_err());
    }

    #[test]
    fn cross_qualifies_duplicate_names() {
        let a = Schema::new("r1", &["W", "X"]);
        let b = Schema::new("r2", &["X", "Y"]);
        let c = a.cross(&b);
        assert_eq!(
            c.attrs(),
            &[
                "W".to_owned(),
                "r1.X".to_owned(),
                "r2.X".to_owned(),
                "Y".to_owned()
            ]
        );
        assert_eq!(c.arity(), 4);
    }

    #[test]
    fn project_validates_positions() {
        let s = Schema::new("r", &["A", "B"]);
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.attrs(), &["B".to_owned()]);
        assert!(s.project(&[2]).is_err());
    }

    #[test]
    fn debug_marks_key_attrs() {
        let s = Schema::with_key("r1", &["W", "X"], &["W"]).unwrap();
        assert_eq!(format!("{s:?}"), "r1(W*,X)");
    }
}
