//! A named relation: schema plus signed-bag contents.

use std::fmt;

use crate::bag::SignedBag;
use crate::error::RelationalError;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// A base relation instance: a [`Schema`] together with its current
/// [`SignedBag`] contents. Base relations at the source are always *plain*
/// (all counts positive); signed contents appear only in intermediate query
/// results and maintenance deltas.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    bag: SignedBag,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            bag: SignedBag::new(),
        }
    }

    /// A relation initialized with tuples (arity-checked).
    ///
    /// # Errors
    /// Returns [`RelationalError::ArityMismatch`] if a tuple does not match
    /// the schema arity.
    pub fn with_tuples(
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, RelationalError> {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The contents.
    pub fn bag(&self) -> &SignedBag {
        &self.bag
    }

    /// Number of tuple occurrences (cardinality, duplicates counted).
    pub fn cardinality(&self) -> u64 {
        self.bag.pos_len()
    }

    fn check_arity(&self, tuple: &Tuple) -> Result<(), RelationalError> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                context: self.schema.relation().to_owned(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(())
    }

    /// Insert one copy of `tuple`.
    ///
    /// # Errors
    /// Returns [`RelationalError::ArityMismatch`] on arity violation.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), RelationalError> {
        self.check_arity(&tuple)?;
        self.bag.add(tuple, 1);
        Ok(())
    }

    /// Delete one copy of `tuple`. Deleting an absent tuple is a no-op
    /// (sources are autonomous; the warehouse cannot assume perfect feeds),
    /// and the return value reports whether a copy was removed.
    ///
    /// # Errors
    /// Returns [`RelationalError::ArityMismatch`] on arity violation.
    pub fn delete(&mut self, tuple: &Tuple) -> Result<bool, RelationalError> {
        self.check_arity(tuple)?;
        if self.bag.count(tuple) > 0 {
            self.bag.add(tuple.clone(), -1);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Whether the relation contains at least one copy of `tuple`.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.bag.count(tuple) > 0
    }

    /// Extract the key values of `tuple` according to the schema's declared
    /// key.
    ///
    /// # Errors
    /// Returns [`RelationalError::MissingKey`] when the schema has no key.
    pub fn key_of(&self, tuple: &Tuple) -> Result<Tuple, RelationalError> {
        if !self.schema.has_key() {
            return Err(RelationalError::MissingKey {
                relation: self.schema.relation().to_owned(),
            });
        }
        Ok(tuple.project(self.schema.key_positions()))
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{:?}", self.schema, self.bag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r1() -> Relation {
        Relation::with_tuples(Schema::new("r1", &["W", "X"]), [Tuple::ints([1, 2])]).unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut r = r1();
        assert!(r.contains(&Tuple::ints([1, 2])));
        r.insert(Tuple::ints([4, 2])).unwrap();
        assert_eq!(r.cardinality(), 2);
    }

    #[test]
    fn arity_checked() {
        let mut r = r1();
        assert!(r.insert(Tuple::ints([1])).is_err());
        assert!(r.delete(&Tuple::ints([1, 2, 3])).is_err());
    }

    #[test]
    fn delete_absent_is_noop() {
        let mut r = r1();
        assert!(!r.delete(&Tuple::ints([9, 9])).unwrap());
        assert_eq!(r.cardinality(), 1);
        assert!(r.delete(&Tuple::ints([1, 2])).unwrap());
        assert_eq!(r.cardinality(), 0);
        assert!(r.bag().is_empty());
    }

    #[test]
    fn duplicates_tracked() {
        let mut r = r1();
        r.insert(Tuple::ints([1, 2])).unwrap();
        assert_eq!(r.cardinality(), 2);
        r.delete(&Tuple::ints([1, 2])).unwrap();
        assert!(r.contains(&Tuple::ints([1, 2])));
    }

    #[test]
    fn key_extraction() {
        let s = Schema::with_key("r1", &["W", "X"], &["W"]).unwrap();
        let r = Relation::with_tuples(s, [Tuple::ints([1, 2])]).unwrap();
        assert_eq!(r.key_of(&Tuple::ints([1, 2])).unwrap(), Tuple::ints([1]));
        assert!(r1().key_of(&Tuple::ints([1, 2])).is_err());
    }
}
