//! Per-term SPJ planning: predicate pushdown, composite hash-join keys,
//! and greedy data-dependent join ordering.
//!
//! An SPJ term `π_proj(σ_cond(r1 × … × rn))` names its columns relative
//! to the full product. The planner splits `cond` into its AND-skeleton
//! conjuncts and classifies each one:
//!
//! * every referenced column falls inside one input's slice → **pushdown**:
//!   the conjunct is rewritten into that input's local coordinates and
//!   applied as a pre-selection before any join;
//! * `Column = Column` equality spanning two inputs → **join edge**: it
//!   becomes (part of) a composite hash-join key and is never re-checked;
//! * anything else (cross-input inequalities, disjunctions, column-free
//!   conjuncts) → **residual**: re-applied once on the joined result.
//!
//! Join order is chosen greedily at execution time from the actual
//! post-pushdown bag sizes: start from the smallest input, then repeatedly
//! attach the candidate minimizing the estimated cardinality
//! `|acc| · |cand| / distinct-keys(cand)` (or the plain product for a
//! cross). Because joins are no longer performed in input order, the
//! executor tracks a *layout* mapping accumulator positions back to
//! canonical product columns; the residual predicate and the projection
//! are remapped through it at the end.

use std::collections::{HashMap, HashSet};

use crate::algebra::{cross, equijoin_multi, project, select};
use crate::bag::SignedBag;
use crate::error::RelationalError;
use crate::predicate::{CmpOp, Operand, Predicate};
use crate::tuple::Tuple;

/// Where each conjunct of a term's predicate ended up, for a fixed list
/// of input arities. Columns in [`Self::pushdown`] are input-local; all
/// other columns are canonical (product-relative).
#[derive(Debug, Clone)]
pub struct TermPlan {
    arities: Vec<usize>,
    offsets: Vec<usize>,
    total: usize,
    /// Per input: the conjunction pushed below the joins, rewritten to
    /// that input's local columns (`True` when nothing pushed).
    pub pushdown: Vec<Predicate>,
    /// Cross-input equality edges in canonical columns. Every edge is
    /// consumed as (part of) a composite join key and never re-checked.
    pub edges: Vec<(usize, usize)>,
    /// Conjuncts that survive to a final selection on the joined result,
    /// in canonical columns (`True` when everything was consumed).
    pub residual: Predicate,
}

impl TermPlan {
    /// Classify the conjuncts of `cond` for inputs with these arities.
    #[must_use]
    pub fn new(arities: Vec<usize>, cond: &Predicate) -> TermPlan {
        let mut offsets = Vec::with_capacity(arities.len());
        let mut total = 0usize;
        for &a in &arities {
            offsets.push(total);
            total += a;
        }
        let mut plan = TermPlan {
            pushdown: vec![Predicate::True; arities.len()],
            edges: Vec::new(),
            residual: Predicate::True,
            arities,
            offsets,
            total,
        };
        for conj in cond.conjuncts() {
            plan.classify(conj);
        }
        plan
    }

    /// The input owning canonical column `col`, if it is in range.
    fn owner(&self, col: usize) -> Option<usize> {
        if col >= self.total {
            return None;
        }
        Some(self.offsets.partition_point(|&o| o <= col) - 1)
    }

    fn classify(&mut self, conj: &Predicate) {
        if let Predicate::Cmp {
            lhs: Operand::Column(a),
            op: CmpOp::Eq,
            rhs: Operand::Column(b),
        } = conj
        {
            if let (Some(oa), Some(ob)) = (self.owner(*a), self.owner(*b)) {
                if oa != ob {
                    self.edges.push((*a, *b));
                    return;
                }
            }
        }
        let cols = conj.columns();
        let single_owner = match (cols.first(), cols.last()) {
            (Some(&lo), Some(&hi)) => match (self.owner(lo), self.owner(hi)) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            // Column-free conjunct (True/False/const comparison): keep it
            // residual so a `False` still empties the result.
            _ => None,
        };
        match single_owner {
            Some(i) => {
                let lo = self.offsets[i];
                let local = conj.map_columns(&|c| c - lo);
                self.pushdown[i] =
                    std::mem::replace(&mut self.pushdown[i], Predicate::True).and(local);
            }
            None => {
                self.residual =
                    std::mem::replace(&mut self.residual, Predicate::True).and(conj.clone());
            }
        }
    }

    /// The canonical join-key columns `(acc_side, cand_side)` linking
    /// input `cand` to the set of already-joined inputs.
    fn edges_to(&self, cand: usize, joined: &[bool]) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                let (oa, ob) = (self.owner(a)?, self.owner(b)?);
                if ob == cand && joined[oa] {
                    Some((a, b))
                } else if oa == cand && joined[ob] {
                    Some((b, a))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Total tuple occurrences (duplicates and pending deletions included).
fn total_occurrences(bag: &SignedBag) -> f64 {
    (bag.pos_len() + bag.neg_len()) as f64
}

/// Distinct composite-key count of `bag` over `cols`, floored at 1.
fn distinct_keys(bag: &SignedBag, cols: &[usize]) -> f64 {
    let mut keys = HashSet::new();
    for (t, _) in bag.iter() {
        let key: Option<Vec<_>> = cols.iter().map(|&c| t.get(c)).collect();
        if let Some(k) = key {
            keys.insert(k);
        }
    }
    (keys.len().max(1)) as f64
}

/// Greedy join order over the post-pushdown inputs: start from the
/// smallest bag, then repeatedly pick the candidate with the smallest
/// estimated joined cardinality — `|acc| · |cand| / distinct-keys(cand)`
/// when an equality edge links it to the accumulator, `|acc| · |cand|`
/// for a cross product. Exposed for planner tests.
#[must_use]
pub fn greedy_order(plan: &TermPlan, selected: &[SignedBag]) -> Vec<usize> {
    let n = selected.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let totals: Vec<f64> = selected.iter().map(total_occurrences).collect();
    let start = (0..n)
        .min_by(|&a, &b| totals[a].total_cmp(&totals[b]))
        .expect("non-empty input list");
    let mut order = Vec::with_capacity(n);
    order.push(start);
    let mut joined = vec![false; n];
    joined[start] = true;
    let mut acc_est = totals[start];
    for _ in 1..n {
        let mut best: Option<(f64, usize)> = None;
        for cand in 0..n {
            if joined[cand] {
                continue;
            }
            let key_cols: Vec<usize> = plan
                .edges_to(cand, &joined)
                .iter()
                .map(|&(_, c)| c - plan.offsets[cand])
                .collect();
            let est = if key_cols.is_empty() {
                acc_est * totals[cand]
            } else {
                acc_est * totals[cand] / distinct_keys(&selected[cand], &key_cols)
            };
            if best.map_or(true, |(b, _)| est < b) {
                best = Some((est, cand));
            }
        }
        let (est, cand) = best.expect("some input still unjoined");
        order.push(cand);
        joined[cand] = true;
        acc_est = est.max(1.0);
    }
    order
}

/// Planned evaluation of `π_proj(σ_cond(inputs[0] × … ))`: pushdown,
/// composite-key hash joins in greedy order, then residual selection and
/// projection remapped through the executed layout. Answers equal
/// [`crate::algebra::spj_naive`] exactly.
///
/// # Errors
/// Returns [`RelationalError::PositionOutOfRange`] when `cond` or `proj`
/// references a column outside the product, and propagates predicate
/// evaluation errors.
pub fn spj_planned(
    inputs: &[&SignedBag],
    cond: &Predicate,
    proj: &[usize],
) -> Result<SignedBag, RelationalError> {
    if inputs.is_empty() {
        // Zero-ary product is the unit bag {()}: nothing to plan.
        let selected = select(&SignedBag::singleton(Tuple::ints([])), cond)?;
        return project(&selected, proj);
    }
    if inputs.iter().any(|b| b.is_empty()) {
        return Ok(SignedBag::new());
    }
    // Arity of each input, inferred from any tuple (all are non-empty).
    let arities: Vec<usize> = inputs
        .iter()
        .map(|b| b.iter().next().map(|(t, _)| t.arity()).unwrap_or(0))
        .collect();
    let plan = TermPlan::new(arities, cond);
    if let Some(&position) = proj.iter().find(|&&p| p >= plan.total) {
        return Err(RelationalError::PositionOutOfRange {
            position,
            arity: plan.total,
        });
    }
    if let Some(position) = cond.columns().into_iter().find(|&c| c >= plan.total) {
        return Err(RelationalError::PositionOutOfRange {
            position,
            arity: plan.total,
        });
    }

    // Pushdown: pre-select each input; an emptied input empties the term.
    let mut selected = Vec::with_capacity(inputs.len());
    for (input, pred) in inputs.iter().zip(&plan.pushdown) {
        let s = select(input, pred)?;
        if s.is_empty() {
            return Ok(SignedBag::new());
        }
        selected.push(s);
    }

    let order = greedy_order(&plan, &selected);

    // Execute the joins, tracking which canonical column sits at each
    // accumulator position.
    let mut joined = vec![false; inputs.len()];
    let first = order[0];
    joined[first] = true;
    let mut layout: Vec<usize> =
        (plan.offsets[first]..plan.offsets[first] + plan.arities[first]).collect();
    let mut acc = selected[first].clone();
    for &next in &order[1..] {
        let keys: Vec<(usize, usize)> = plan
            .edges_to(next, &joined)
            .into_iter()
            .map(|(acc_col, cand_col)| {
                let acc_pos = layout
                    .iter()
                    .position(|&c| c == acc_col)
                    .expect("edge endpoint already joined");
                (acc_pos, cand_col - plan.offsets[next])
            })
            .collect();
        acc = if keys.is_empty() {
            cross(&acc, &selected[next])
        } else {
            equijoin_multi(&acc, &selected[next], &keys)
        };
        layout.extend(plan.offsets[next]..plan.offsets[next] + plan.arities[next]);
        joined[next] = true;
        if acc.is_empty() {
            return Ok(SignedBag::new());
        }
    }

    // Remap residual and projection from canonical columns to the layout
    // the joins actually produced.
    let pos_of: HashMap<usize, usize> = layout.iter().enumerate().map(|(p, &c)| (c, p)).collect();
    let residual = plan.residual.map_columns(&|c| pos_of[&c]);
    let kept = select(&acc, &residual)?;
    let mapped_proj: Vec<usize> = proj.iter().map(|&p| pos_of[&p]).collect();
    project(&kept, &mapped_proj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::spj_naive;
    use crate::predicate::CmpOp;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::ints(vals.iter().copied())
    }

    fn chain_cond() -> Predicate {
        // r1(W,X) ⋈ r2(X,Y) ⋈ r3(Y,Z), W > 5 — the Example-6 shape with
        // a single-relation constant filter on r1.
        Predicate::col_eq(1, 2)
            .and(Predicate::col_eq(3, 4))
            .and(Predicate::col_const(0, CmpOp::Gt, 5))
    }

    #[test]
    fn classification_splits_pushdown_edges_residual() {
        let plan = TermPlan::new(vec![2, 2, 2], &chain_cond());
        assert_eq!(plan.edges, vec![(1, 2), (3, 4)]);
        // W > 5 references only r1: pushed down, locally col 0.
        assert!(matches!(plan.pushdown[0], Predicate::Cmp { .. }));
        assert!(matches!(plan.pushdown[1], Predicate::True));
        assert!(matches!(plan.pushdown[2], Predicate::True));
        assert!(matches!(plan.residual, Predicate::True));
    }

    #[test]
    fn cross_input_inequality_stays_residual() {
        let cond = Predicate::col_eq(1, 2).and(Predicate::col_cmp(0, CmpOp::Lt, 3));
        let plan = TermPlan::new(vec![2, 2], &cond);
        assert_eq!(plan.edges, vec![(1, 2)]);
        assert!(matches!(plan.residual, Predicate::Cmp { .. }));
    }

    #[test]
    fn disjunction_within_one_input_is_pushed() {
        let cond = Predicate::col_const(0, CmpOp::Eq, 1).or(Predicate::col_const(1, CmpOp::Eq, 2));
        let plan = TermPlan::new(vec![2, 2], &cond);
        assert!(matches!(plan.pushdown[0], Predicate::Or(_, _)));
        assert!(matches!(plan.residual, Predicate::True));
    }

    #[test]
    fn same_input_equality_is_pushed_not_an_edge() {
        let plan = TermPlan::new(vec![3, 1], &Predicate::col_eq(0, 2));
        assert!(plan.edges.is_empty());
        assert!(matches!(plan.pushdown[0], Predicate::Cmp { .. }));
    }

    #[test]
    fn false_conjunct_empties_the_term() {
        let r = SignedBag::from_tuples([t(&[1])]);
        let cond = Predicate::False.and(Predicate::True);
        let v = spj_planned(&[&r, &r], &cond, &[0]).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn greedy_order_starts_with_smallest_bag() {
        let big = SignedBag::from_tuples((0..50).map(|i| t(&[i, i])));
        let small = SignedBag::from_tuples([t(&[1, 2])]);
        let plan = TermPlan::new(vec![2, 2], &Predicate::col_eq(1, 2));
        let order = greedy_order(&plan, &[big, small]);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn greedy_order_prefers_linked_inputs_over_cross() {
        // r0 small; r1 linked to r0 by an edge, r2 unlinked. The linked
        // join estimate divides by distinct keys, so r1 must come before
        // the forced cross with r2.
        let r0 = SignedBag::from_tuples([t(&[1, 2])]);
        let r1 = SignedBag::from_tuples((0..10).map(|i| t(&[i, i])));
        let r2 = SignedBag::from_tuples((0..10).map(|i| t(&[i, i])));
        let plan = TermPlan::new(vec![2, 2, 2], &Predicate::col_eq(1, 2));
        let order = greedy_order(&plan, &[r0, r1, r2]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn planned_matches_naive_on_chain_with_reordering() {
        // Data sized so the greedy order differs from input order: r3 is
        // the smallest input and becomes the start.
        let r1 = SignedBag::from_tuples((0..12).map(|i| t(&[i, i % 4])));
        let r2 = SignedBag::from_tuples((0..8).map(|i| t(&[i % 4, i % 3])));
        let r3 = SignedBag::from_tuples([t(&[1, 7]), t(&[2, 9])]);
        let cond = chain_cond();
        for proj in [&[0usize, 5][..], &[5, 0], &[2, 2, 4]] {
            let planned = spj_planned(&[&r1, &r2, &r3], &cond, proj).unwrap();
            let naive = spj_naive(&[&r1, &r2, &r3], &cond, proj).unwrap();
            assert_eq!(planned, naive, "proj {proj:?}");
        }
    }

    #[test]
    fn planned_matches_naive_with_signed_counts() {
        let mut r1 = SignedBag::new();
        r1.add(t(&[1, 2]), 3);
        r1.add(t(&[6, 2]), -2);
        let mut r2 = SignedBag::new();
        r2.add(t(&[2, 5]), -1);
        r2.add(t(&[2, 6]), 4);
        let cond = Predicate::col_eq(1, 2);
        let planned = spj_planned(&[&r1, &r2], &cond, &[0, 3]).unwrap();
        let naive = spj_naive(&[&r1, &r2], &cond, &[0, 3]).unwrap();
        assert_eq!(planned, naive);
        assert_eq!(planned.count(&t(&[1, 5])), -3);
    }

    #[test]
    fn planned_matches_naive_on_composite_edge() {
        // Two inputs linked by two equalities at once: one composite key.
        let r1 = SignedBag::from_tuples([t(&[1, 2, 0]), t(&[1, 3, 0]), t(&[2, 2, 1])]);
        let r2 = SignedBag::from_tuples([t(&[1, 2]), t(&[2, 2]), t(&[1, 3])]);
        let cond = Predicate::col_eq(0, 3).and(Predicate::col_eq(1, 4));
        let planned = spj_planned(&[&r1, &r2], &cond, &[0, 1, 2]).unwrap();
        let naive = spj_naive(&[&r1, &r2], &cond, &[0, 1, 2]).unwrap();
        assert_eq!(planned, naive);
    }

    #[test]
    fn planned_matches_naive_on_pure_cross_with_residual() {
        let r1 = SignedBag::from_tuples([t(&[1]), t(&[5])]);
        let r2 = SignedBag::from_tuples([t(&[3]), t(&[4])]);
        let cond = Predicate::col_cmp(0, CmpOp::Lt, 1);
        let planned = spj_planned(&[&r1, &r2], &cond, &[0, 1]).unwrap();
        let naive = spj_naive(&[&r1, &r2], &cond, &[0, 1]).unwrap();
        assert_eq!(planned, naive);
        assert_eq!(planned.pos_len(), 2); // (1,3), (1,4)
    }

    #[test]
    fn out_of_range_columns_error() {
        let r = SignedBag::from_tuples([t(&[1])]);
        let err = spj_planned(&[&r], &Predicate::col_const(4, CmpOp::Eq, 1), &[0]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::PositionOutOfRange {
                position: 4,
                arity: 1
            }
        ));
        let err = spj_planned(&[&r], &Predicate::True, &[2]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::PositionOutOfRange {
                position: 2,
                arity: 1
            }
        ));
    }
}
