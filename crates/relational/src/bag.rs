//! Signed bags: multiset relations with `+`/`−` replication counts.
//!
//! This is the counting formulation of the paper's signed-tuple semantics
//! (§4.1). A tuple mapped to count `n > 0` occurs `n` times with a `+` sign;
//! count `n < 0` means `|n|` occurrences with a `−` sign. The paper's binary
//! operators on relations,
//!
//! ```text
//! r1 + r2 = (pos(r1) ∪ pos(r2)) − (neg(r1) ∪ neg(r2))
//! r1 − r2 = r1 + (−r2)
//! ```
//!
//! are exactly pointwise count addition and subtraction, which is how we
//! implement them. Zero counts are pruned eagerly, so `r − r` is the empty
//! bag and equality is structural.

use std::collections::BTreeMap;
use std::fmt;

use crate::tuple::{Sign, SignedTuple, Tuple};

/// A relation with signed replication counts.
///
/// Iteration order is deterministic (tuples in value order) so traces,
/// tests, and wire encodings are reproducible.
///
/// ```
/// use eca_relational::{SignedBag, Tuple};
///
/// // MV = ([1],[4]); an answer deletes one [4] and inserts [7].
/// let mv = SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])]);
/// let mut answer = SignedBag::new();
/// answer.add(Tuple::ints([4]), -1);
/// answer.add(Tuple::ints([7]), 1);
///
/// let updated = mv.plus(&answer);
/// assert_eq!(updated.count(&Tuple::ints([4])), 0);
/// assert_eq!(updated.count(&Tuple::ints([7])), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SignedBag {
    counts: BTreeMap<Tuple, i64>,
}

impl SignedBag {
    /// The empty bag.
    pub fn new() -> Self {
        SignedBag::default()
    }

    /// A bag holding one positive copy of each given tuple (duplicates
    /// accumulate).
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut bag = SignedBag::new();
        for t in tuples {
            bag.add(t, 1);
        }
        bag
    }

    /// A bag holding the given signed tuples.
    pub fn from_signed(tuples: impl IntoIterator<Item = SignedTuple>) -> Self {
        let mut bag = SignedBag::new();
        for st in tuples {
            bag.add(st.tuple, st.sign.factor());
        }
        bag
    }

    /// A bag holding a single positive tuple.
    pub fn singleton(tuple: Tuple) -> Self {
        let mut bag = SignedBag::new();
        bag.add(tuple, 1);
        bag
    }

    /// Adjust the count of `tuple` by `delta`, pruning zeros.
    pub fn add(&mut self, tuple: Tuple, delta: i64) {
        if delta == 0 {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.counts.entry(tuple) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += delta;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(v) => {
                v.insert(delta);
            }
        }
    }

    /// The signed count of `tuple` (0 if absent).
    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.counts.get(tuple).copied().unwrap_or(0)
    }

    /// Whether the bag has no tuples (all counts zero).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of *distinct* tuples with non-zero count.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total number of positive tuple occurrences.
    pub fn pos_len(&self) -> u64 {
        self.counts
            .values()
            .filter(|c| **c > 0)
            .map(|c| *c as u64)
            .sum()
    }

    /// Total number of negative tuple occurrences.
    pub fn neg_len(&self) -> u64 {
        self.counts
            .values()
            .filter(|c| **c < 0)
            .map(|c| c.unsigned_abs())
            .sum()
    }

    /// Sum of all signed counts (can be negative).
    pub fn signed_len(&self) -> i64 {
        self.counts.values().sum()
    }

    /// Whether every count is non-negative, i.e. the bag is a plain
    /// (unsigned) relation.
    pub fn is_plain(&self) -> bool {
        self.counts.values().all(|c| *c > 0)
    }

    /// Iterate `(tuple, signed count)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> + '_ {
        self.counts.iter().map(|(t, c)| (t, *c))
    }

    /// Iterate each occurrence as a [`SignedTuple`], expanding counts.
    pub fn iter_occurrences(&self) -> impl Iterator<Item = SignedTuple> + '_ {
        self.counts.iter().flat_map(|(t, c)| {
            let sign = if *c > 0 { Sign::Plus } else { Sign::Minus };
            std::iter::repeat_with(move || SignedTuple {
                sign,
                tuple: t.clone(),
            })
            .take(c.unsigned_abs() as usize)
        })
    }

    /// The positive part `pos(r)` as a plain bag.
    pub fn positive_part(&self) -> SignedBag {
        SignedBag {
            counts: self
                .counts
                .iter()
                .filter(|(_, c)| **c > 0)
                .map(|(t, c)| (t.clone(), *c))
                .collect(),
        }
    }

    /// The negative part `neg(r)` as a plain bag (counts made positive).
    pub fn negative_part(&self) -> SignedBag {
        SignedBag {
            counts: self
                .counts
                .iter()
                .filter(|(_, c)| **c < 0)
                .map(|(t, c)| (t.clone(), -*c))
                .collect(),
        }
    }

    /// The paper's `+` operator: pointwise count addition.
    #[must_use]
    pub fn plus(&self, other: &SignedBag) -> SignedBag {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The paper's `−` operator: `r1 + (−r2)`.
    #[must_use]
    pub fn minus(&self, other: &SignedBag) -> SignedBag {
        self.plus(&other.negated())
    }

    /// `−r`: every sign flipped.
    #[must_use]
    pub fn negated(&self) -> SignedBag {
        SignedBag {
            counts: self.counts.iter().map(|(t, c)| (t.clone(), -c)).collect(),
        }
    }

    /// In-place `self += other`.
    pub fn merge(&mut self, other: &SignedBag) {
        for (t, c) in &other.counts {
            self.add(t.clone(), *c);
        }
    }

    /// In-place `self −= other`.
    pub fn merge_negated(&mut self, other: &SignedBag) {
        for (t, c) in &other.counts {
            self.add(t.clone(), -*c);
        }
    }

    /// Remove every occurrence (positive or negative) of tuples for which
    /// `pred` returns true. Returns the number of distinct tuples removed.
    ///
    /// Used by ECA-Key's `key-delete` operation (paper §5.4).
    pub fn remove_where(&mut self, mut pred: impl FnMut(&Tuple) -> bool) -> usize {
        let before = self.counts.len();
        self.counts.retain(|t, _| !pred(t));
        before - self.counts.len()
    }

    /// Cap every positive count at 1 and drop negatives.
    ///
    /// ECA-Key ignores duplicates when accumulating answers into COLLECT
    /// (paper §5.4 step 4: "duplicate tuples are not added").
    #[must_use]
    pub fn distinct(&self) -> SignedBag {
        SignedBag {
            counts: self
                .counts
                .iter()
                .filter(|(_, c)| **c > 0)
                .map(|(t, _)| (t.clone(), 1))
                .collect(),
        }
    }

    /// Merge `other` into `self`, skipping tuples already present with a
    /// positive count (ECAK's duplicate suppression). Negative tuples in
    /// `other` are applied as deletions.
    pub fn merge_distinct(&mut self, other: &SignedBag) {
        for (t, c) in &other.counts {
            if *c > 0 {
                if self.count(t) <= 0 {
                    self.add(t.clone(), 1);
                }
            } else {
                self.add(t.clone(), *c);
            }
        }
    }

    /// Total encoded payload size in bytes under the wire codec: a 4-byte
    /// tuple count, then per occurrence a 1-byte sign plus the tuple
    /// encoding.
    pub fn encoded_len(&self) -> usize {
        4 + self
            .counts
            .iter()
            .map(|(t, c)| (c.unsigned_abs() as usize) * (1 + t.encoded_len()))
            .sum::<usize>()
    }
}

impl fmt::Debug for SignedBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        let mut first = true;
        for st in self.iter_occurrences() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if st.sign == Sign::Minus {
                write!(f, "{:?}", st)?;
            } else {
                write!(f, "{:?}", st.tuple)?;
            }
        }
        write!(f, ")")
    }
}

impl FromIterator<Tuple> for SignedBag {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        SignedBag::from_tuples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::ints(vals.iter().copied())
    }

    #[test]
    fn add_and_prune_zero() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 1);
        b.add(t(&[1]), -1);
        assert!(b.is_empty());
        assert_eq!(b.count(&t(&[1])), 0);
    }

    #[test]
    fn duplicates_are_retained() {
        let b = SignedBag::from_tuples([t(&[1]), t(&[1]), t(&[2])]);
        assert_eq!(b.count(&t(&[1])), 2);
        assert_eq!(b.pos_len(), 3);
        assert_eq!(b.distinct_len(), 2);
    }

    #[test]
    fn plus_matches_paper_definition() {
        // r1 = (+[1], -[2]), r2 = (+[2], +[3])
        let mut r1 = SignedBag::new();
        r1.add(t(&[1]), 1);
        r1.add(t(&[2]), -1);
        let r2 = SignedBag::from_tuples([t(&[2]), t(&[3])]);
        let sum = r1.plus(&r2);
        // pos union = ([1],[2],[3]); neg union = ([2]); difference = ([1],[3])
        assert_eq!(sum.count(&t(&[1])), 1);
        assert_eq!(sum.count(&t(&[2])), 0);
        assert_eq!(sum.count(&t(&[3])), 1);
    }

    #[test]
    fn minus_is_plus_of_negation() {
        let r1 = SignedBag::from_tuples([t(&[1]), t(&[4])]);
        let r2 = SignedBag::from_tuples([t(&[4])]);
        let d = r1.minus(&r2);
        assert_eq!(d.count(&t(&[1])), 1);
        assert_eq!(d.count(&t(&[4])), 0);
        assert_eq!(r1.minus(&r1), SignedBag::new());
    }

    #[test]
    fn pos_neg_parts() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 2);
        b.add(t(&[2]), -3);
        assert_eq!(b.positive_part().count(&t(&[1])), 2);
        assert_eq!(b.negative_part().count(&t(&[2])), 3);
        assert_eq!(b.pos_len(), 2);
        assert_eq!(b.neg_len(), 3);
        assert_eq!(b.signed_len(), -1);
        assert!(!b.is_plain());
        assert!(b.positive_part().is_plain());
    }

    #[test]
    fn remove_where_deletes_matching() {
        let mut b = SignedBag::from_tuples([t(&[1, 3]), t(&[2, 3]), t(&[1, 4])]);
        let n = b.remove_where(|tp| tp.get(0) == Some(&crate::Value::Int(1)));
        assert_eq!(n, 2);
        assert_eq!(b.distinct_len(), 1);
        assert_eq!(b.count(&t(&[2, 3])), 1);
    }

    #[test]
    fn distinct_and_merge_distinct() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 3);
        b.add(t(&[2]), -1);
        let d = b.distinct();
        assert_eq!(d.count(&t(&[1])), 1);
        assert_eq!(d.count(&t(&[2])), 0);

        let mut collect = SignedBag::from_tuples([t(&[3, 4])]);
        let answer = SignedBag::from_tuples([t(&[3, 4]), t(&[3, 3])]);
        collect.merge_distinct(&answer);
        // [3,4] was a duplicate and is not added twice.
        assert_eq!(collect.count(&t(&[3, 4])), 1);
        assert_eq!(collect.count(&t(&[3, 3])), 1);
    }

    #[test]
    fn merge_distinct_applies_deletions() {
        let mut collect = SignedBag::from_tuples([t(&[1])]);
        let mut ans = SignedBag::new();
        ans.add(t(&[1]), -1);
        collect.merge_distinct(&ans);
        assert!(collect.is_empty());
    }

    #[test]
    fn deterministic_iteration_order() {
        let b = SignedBag::from_tuples([t(&[3]), t(&[1]), t(&[2])]);
        let order: Vec<_> = b.iter().map(|(tp, _)| tp.clone()).collect();
        assert_eq!(order, vec![t(&[1]), t(&[2]), t(&[3])]);
    }

    #[test]
    fn iter_occurrences_expands_counts() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 2);
        b.add(t(&[2]), -1);
        let occ: Vec<String> = b.iter_occurrences().map(|s| format!("{s:?}")).collect();
        assert_eq!(occ, vec!["+[1]", "+[1]", "-[2]"]);
    }

    #[test]
    fn debug_format() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 1);
        b.add(t(&[4]), -1);
        assert_eq!(format!("{b:?}"), "([1],-[4])");
    }

    #[test]
    fn encoded_len_scales_with_occurrences() {
        let one = SignedBag::singleton(t(&[1]));
        let mut two = SignedBag::new();
        two.add(t(&[1]), 2);
        assert!(two.encoded_len() > one.encoded_len());
        assert_eq!(SignedBag::new().encoded_len(), 4);
    }
}
