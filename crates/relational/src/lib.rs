//! Relational substrate for the ECA warehouse reproduction.
//!
//! This crate implements the data model of Zhuge et al., *View Maintenance in
//! a Warehousing Environment* (SIGMOD 1995), §4:
//!
//! * tuples of typed values ([`Tuple`], [`Value`]),
//! * named schemas with optional key information ([`Schema`]),
//! * **signed bag** relations that retain duplicates and carry `+`/`−`
//!   replication counts ([`SignedBag`]) — the paper's signed-tuple semantics,
//! * a small predicate language for selection conditions ([`Predicate`]),
//! * the select/project/cross/join operators with the paper's
//!   sign-propagation rules ([`algebra`]),
//! * base-relation updates ([`Update`]).
//!
//! Duplicate retention (replication counts) is essential for incremental
//! deletion handling (paper §1.1, footnote 1); we follow the counting
//! formulation: a tuple with count `n > 0` appears `n` times, a tuple with
//! count `n < 0` is a pending deletion of `|n|` copies. The paper's relation
//! operators `+` and `−` (§4.1) are exactly count addition and subtraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod bag;
pub mod error;
pub mod modify;
pub mod planner;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod update;
pub mod value;

pub use bag::SignedBag;
pub use error::RelationalError;
pub use modify::Modification;
pub use predicate::{CmpOp, Operand, Predicate};
pub use relation::Relation;
pub use schema::Schema;
pub use tuple::{Sign, SignedTuple, Tuple};
pub use update::{Update, UpdateKind};
pub use value::Value;
