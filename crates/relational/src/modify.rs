//! Modifications (paper §4.1): *"Modifications must be treated as
//! deletions followed by insertions, although extensions to our approach
//! could permit modifications to be treated directly."*
//!
//! [`Modification`] packages the pair and expands it in the order the
//! paper prescribes; every maintenance algorithm then handles the two
//! halves as ordinary updates, with compensation taking care of any
//! interleaving between them.

use crate::tuple::Tuple;
use crate::update::Update;

/// An in-place change of one tuple, expanded to delete-then-insert.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Modification {
    /// The affected base relation.
    pub relation: String,
    /// The tuple being replaced.
    pub old: Tuple,
    /// Its replacement.
    pub new: Tuple,
}

impl Modification {
    /// Describe a modification.
    pub fn new(relation: impl Into<String>, old: Tuple, new: Tuple) -> Self {
        Modification {
            relation: relation.into(),
            old,
            new,
        }
    }

    /// Expand into the paper's delete-then-insert pair. A no-op
    /// modification (`old == new`) expands to nothing.
    pub fn expand(&self) -> Vec<Update> {
        if self.old == self.new {
            return Vec::new();
        }
        vec![
            Update::delete(self.relation.clone(), self.old.clone()),
            Update::insert(self.relation.clone(), self.new.clone()),
        ]
    }
}

/// Expand a mixed stream of modifications into plain updates.
pub fn expand_all<'a>(mods: impl IntoIterator<Item = &'a Modification>) -> Vec<Update> {
    mods.into_iter().flat_map(Modification::expand).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateKind;

    #[test]
    fn expands_delete_then_insert() {
        let m = Modification::new("r1", Tuple::ints([1, 2]), Tuple::ints([1, 5]));
        let us = m.expand();
        assert_eq!(us.len(), 2);
        assert_eq!(us[0].kind, UpdateKind::Delete);
        assert_eq!(us[0].tuple, Tuple::ints([1, 2]));
        assert_eq!(us[1].kind, UpdateKind::Insert);
        assert_eq!(us[1].tuple, Tuple::ints([1, 5]));
    }

    #[test]
    fn noop_modification_expands_to_nothing() {
        let m = Modification::new("r1", Tuple::ints([1, 2]), Tuple::ints([1, 2]));
        assert!(m.expand().is_empty());
    }

    #[test]
    fn expand_all_flattens() {
        let mods = vec![
            Modification::new("r1", Tuple::ints([1]), Tuple::ints([2])),
            Modification::new("r2", Tuple::ints([3]), Tuple::ints([3])),
            Modification::new("r1", Tuple::ints([2]), Tuple::ints([4])),
        ];
        let us = expand_all(&mods);
        assert_eq!(us.len(), 4);
    }
}
