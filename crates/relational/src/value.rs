//! Scalar values stored in tuples.

use std::fmt;
use std::sync::Arc;

/// A scalar value in a tuple.
///
/// The paper's examples use small integers; we additionally support strings
/// so that realistic warehouse schemas (names, codes) can be modelled. Values
/// are totally ordered (integers before strings) so they can serve as index
/// and key material.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// An immutable, cheaply-clonable string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Return the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Return the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Encoded size of the value in bytes, as counted by the wire layer.
    ///
    /// Integers are 8 bytes; strings are their UTF-8 length plus a 4-byte
    /// length prefix. A 1-byte tag is added by the codec itself.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => 4 + s.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::from(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
    }

    #[test]
    fn str_roundtrip() {
        let v = Value::str("hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn ordering_ints_before_strings() {
        assert!(Value::Int(i64::MAX) < Value::str(""));
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn encoded_len() {
        assert_eq!(Value::Int(7).encoded_len(), 8);
        assert_eq!(Value::str("abc").encoded_len(), 7);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Value::Int(5)), "5");
        assert_eq!(format!("{:?}", Value::str("x")), "\"x\"");
    }
}
