//! Tuples and signed tuples (paper §4.1).

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple of values.
///
/// Tuples are reference-counted so that they can be shared between base
/// relations, indexes, in-flight queries and materialized views without
/// copying payloads.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from any iterable of values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// Convenience constructor for all-integer tuples, matching the paper's
    /// examples (e.g. `[1,2]`).
    pub fn ints(values: impl IntoIterator<Item = i64>) -> Self {
        Tuple(values.into_iter().map(Value::Int).collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether the tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project onto the given positions. Positions may repeat or reorder.
    ///
    /// # Panics
    /// Panics if any position is out of range; the caller (the algebra
    /// layer) validates positions against the schema first.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two tuples (used by cross products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// Encoded size in bytes under the wire codec: a 2-byte arity prefix,
    /// then per value a 1-byte tag plus the value payload.
    pub fn encoded_len(&self) -> usize {
        2 + self.0.iter().map(|v| 1 + v.encoded_len()).sum::<usize>()
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> From<[i64; N]> for Tuple {
    fn from(values: [i64; N]) -> Self {
        Tuple::ints(values)
    }
}

/// The sign of a tuple: `+` for existing/inserted, `−` for deleted
/// (paper §4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// An existing or inserted tuple.
    Plus,
    /// A deleted tuple.
    Minus,
}

impl Sign {
    /// Sign propagation through a binary operation (the `t1 × t2` table of
    /// §4.1): like signs give `+`, unlike signs give `−`.
    pub fn combine(self, other: Sign) -> Sign {
        if self == other {
            Sign::Plus
        } else {
            Sign::Minus
        }
    }

    /// The opposite sign.
    pub fn negate(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// The replication-count multiplier for this sign (`+1` or `−1`).
    pub fn factor(self) -> i64 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// A tuple together with its sign.
///
/// Selection and projection preserve the sign; cross products combine signs
/// multiplicatively (paper §4.1 tables).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SignedTuple {
    /// The sign.
    pub sign: Sign,
    /// The payload.
    pub tuple: Tuple,
}

impl SignedTuple {
    /// A positively-signed tuple.
    pub fn pos(tuple: Tuple) -> Self {
        SignedTuple {
            sign: Sign::Plus,
            tuple,
        }
    }

    /// A negatively-signed tuple.
    pub fn neg(tuple: Tuple) -> Self {
        SignedTuple {
            sign: Sign::Minus,
            tuple,
        }
    }
}

impl fmt::Debug for SignedTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.sign, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::ints([1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Some(&Value::Int(2)));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
        assert!(Tuple::ints([]).is_empty());
    }

    #[test]
    fn projection_reorders_and_repeats() {
        let t = Tuple::ints([10, 20, 30]);
        assert_eq!(t.project(&[2, 0, 0]), Tuple::ints([30, 10, 10]));
    }

    #[test]
    fn concat() {
        let a = Tuple::ints([1]);
        let b = Tuple::ints([2, 3]);
        assert_eq!(a.concat(&b), Tuple::ints([1, 2, 3]));
    }

    #[test]
    fn sign_combination_table() {
        use Sign::*;
        // The §4.1 table: ++ => +, +- => -, -- => +, -+ => -.
        assert_eq!(Plus.combine(Plus), Plus);
        assert_eq!(Plus.combine(Minus), Minus);
        assert_eq!(Minus.combine(Minus), Plus);
        assert_eq!(Minus.combine(Plus), Minus);
    }

    #[test]
    fn sign_negate_and_factor() {
        assert_eq!(Sign::Plus.negate(), Sign::Minus);
        assert_eq!(Sign::Minus.negate(), Sign::Plus);
        assert_eq!(Sign::Plus.factor(), 1);
        assert_eq!(Sign::Minus.factor(), -1);
    }

    #[test]
    fn tuple_equality_is_structural() {
        assert_eq!(
            Tuple::ints([1, 2]),
            Tuple::new([Value::Int(1), Value::Int(2)])
        );
        assert_ne!(Tuple::ints([1, 2]), Tuple::ints([2, 1]));
    }

    #[test]
    fn encoded_len_counts_tags_and_prefix() {
        // 2 (arity) + 2 * (1 tag + 8 payload) = 20
        assert_eq!(Tuple::ints([1, 2]).encoded_len(), 20);
    }

    #[test]
    fn debug_format_matches_paper_notation() {
        assert_eq!(format!("{:?}", Tuple::ints([4, 2])), "[4,2]");
        assert_eq!(
            format!("{:?}", SignedTuple::neg(Tuple::ints([1, 2]))),
            "-[1,2]"
        );
    }
}
