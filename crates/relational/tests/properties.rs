//! Property-based tests for the signed-bag algebra laws of paper §4.1.

use eca_relational::algebra::{cross, equijoin, project, select};
use eca_relational::{CmpOp, Predicate, SignedBag, Tuple};
use proptest::prelude::*;

/// Strategy: a small signed bag of 2-attribute integer tuples with counts in
/// −3..=3.
fn signed_bag() -> impl Strategy<Value = SignedBag> {
    prop::collection::vec(((0i64..6, 0i64..6), -3i64..=3), 0..12).prop_map(|entries| {
        let mut bag = SignedBag::new();
        for ((a, b), c) in entries {
            bag.add(Tuple::ints([a, b]), c);
        }
        bag
    })
}

proptest! {
    #[test]
    fn plus_is_commutative(a in signed_bag(), b in signed_bag()) {
        prop_assert_eq!(a.plus(&b), b.plus(&a));
    }

    #[test]
    fn plus_is_associative(a in signed_bag(), b in signed_bag(), c in signed_bag()) {
        prop_assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
    }

    #[test]
    fn minus_self_is_empty(a in signed_bag()) {
        prop_assert!(a.minus(&a).is_empty());
    }

    #[test]
    fn double_negation_is_identity(a in signed_bag()) {
        prop_assert_eq!(a.negated().negated(), a);
    }

    #[test]
    fn pos_neg_decomposition(a in signed_bag()) {
        // r == pos(r) − neg(r)
        prop_assert_eq!(a.positive_part().minus(&a.negative_part()), a);
    }

    #[test]
    fn cross_distributes_over_plus(a in signed_bag(), b in signed_bag(), c in signed_bag()) {
        let lhs = cross(&a.plus(&b), &c);
        let rhs = cross(&a, &c).plus(&cross(&b, &c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn cross_distributes_over_minus(a in signed_bag(), b in signed_bag(), c in signed_bag()) {
        let lhs = cross(&c, &a.minus(&b));
        let rhs = cross(&c, &a).minus(&cross(&c, &b));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_commutes_with_plus(a in signed_bag(), b in signed_bag()) {
        let p = Predicate::col_cmp(0, CmpOp::Lt, 1);
        let lhs = select(&a.plus(&b), &p).unwrap();
        let rhs = select(&a, &p).unwrap().plus(&select(&b, &p).unwrap());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn project_commutes_with_plus(a in signed_bag(), b in signed_bag()) {
        let lhs = project(&a.plus(&b), &[0]).unwrap();
        let rhs = project(&a, &[0]).unwrap().plus(&project(&b, &[0]).unwrap());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn equijoin_equals_cross_then_select(a in signed_bag(), b in signed_bag()) {
        let joined = equijoin(&a, &b, 1, 0);
        let expected = select(&cross(&a, &b), &Predicate::col_eq(1, 2)).unwrap();
        prop_assert_eq!(joined, expected);
    }

    #[test]
    fn signed_len_is_additive(a in signed_bag(), b in signed_bag()) {
        prop_assert_eq!(a.plus(&b).signed_len(), a.signed_len() + b.signed_len());
    }

    #[test]
    fn distinct_is_idempotent(a in signed_bag()) {
        let d = a.distinct();
        prop_assert_eq!(d.distinct(), d);
    }

    #[test]
    fn select_partition(a in signed_bag()) {
        // σ_p(r) + σ_¬p(r) == r
        let p = Predicate::col_cmp(0, CmpOp::Ge, 1);
        let yes = select(&a, &p).unwrap();
        let no = select(&a, &p.clone().not()).unwrap();
        prop_assert_eq!(yes.plus(&no), a);
    }
}
