//! Closed-form cost predictions for ECA-Aux self-maintenance.
//!
//! With auxiliary views covering a subset of the base relations, an
//! update on relation `i` is answered locally **iff every other relation
//! is covered**: the primary term `V⟨U_i⟩` leaves exactly the relations
//! `j ≠ i` unbound, and every compensation term `Q_j⟨U_i⟩` can only
//! contain unbound atoms over relations other than `i`, which the same
//! premise covers. The rule is exact, not an approximation, so the
//! message prediction can be asserted equal (not approximately equal) to
//! the measured meter in `tests/end_to_end_costs.rs`.
//!
//! Under the paper's uniform-update assumption (§6: each of the `n`
//! relations equally likely) the locally-answerable fraction is
//!
//! ```text
//! f = |{i : ∀ j≠i, covered(j)}| / n
//! ```
//!
//! which collapses to the three regimes of a 3-relation view: full
//! coverage → `f = 1` (SC-like, zero messages), one uncovered relation
//! → `f = 1/3` (only updates *on* the uncovered relation are local),
//! two or more uncovered → `f = 0` (plain ECA).
//!
//! Remote updates cost exactly what they cost ECA, so
//! `M = 2k(1−f)` and the best-case byte formula scales the same way.

use eca_workload::Params;

/// The fraction of (uniformly distributed) updates answerable locally:
/// `|{i : ∀ j≠i, covered(j)}| / n`.
///
/// # Panics
/// On an empty coverage vector.
pub fn local_fraction(covered: &[bool]) -> f64 {
    assert!(!covered.is_empty(), "a view has at least one base relation");
    local_relations(covered).count() as f64 / covered.len() as f64
}

/// Which relation indices have all *other* relations covered, i.e. whose
/// updates are answered locally.
fn local_relations(covered: &[bool]) -> impl Iterator<Item = usize> + '_ {
    (0..covered.len()).filter(|&i| covered.iter().enumerate().all(|(j, &c)| j == i || c))
}

/// Expected `M_ECA-Aux = 2k(1−f)` for `k` uniform updates.
pub fn m_eca_aux(k: u64, covered: &[bool]) -> f64 {
    2.0 * k as f64 * (1.0 - local_fraction(covered))
}

/// Exact `M_ECA-Aux` for a concrete update script, given as the sequence
/// of updated relation indices: two messages (query + answer) for every
/// update whose relation lacks full other-coverage, zero for the rest.
///
/// # Panics
/// When a script entry indexes past the coverage vector.
pub fn m_eca_aux_exact(script_relations: &[usize], covered: &[bool]) -> u64 {
    let local: Vec<bool> = {
        let mut v = vec![false; covered.len()];
        for i in local_relations(covered) {
            v[i] = true;
        }
        v
    };
    2 * script_relations.iter().filter(|&&rel| !local[rel]).count() as u64
}

/// Best-case bytes: only remote updates transfer, each `S·σ·J²` as in
/// `B_ECABest` (§6.2) — `B = remote·S·σ·J²`.
pub fn b_eca_aux_best(p: &Params, remote_updates: u64) -> f64 {
    remote_updates as f64
        * p.projected_bytes as f64
        * p.selectivity
        * (p.join_factor * p.join_factor) as f64
}

/// Initial auxiliary residency in tuples: one bag projection of
/// cardinality `C` per covered relation (the §6.2 assumption 5 that `C`
/// stays constant makes this the steady state too).
pub fn aux_storage_tuples(p: &Params, covered: &[bool]) -> u64 {
    covered.iter().filter(|&&c| c).count() as u64 * p.cardinality
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_regimes_for_three_relations() {
        assert_eq!(local_fraction(&[true, true, true]), 1.0);
        assert!((local_fraction(&[true, true, false]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_fraction(&[true, false, false]), 0.0);
        assert_eq!(local_fraction(&[false, false, false]), 0.0);
    }

    #[test]
    fn partial_coverage_localizes_the_uncovered_relation() {
        // covered = {r1, r2}: only r3's updates see all others covered.
        let covered = [true, true, false];
        let locals: Vec<usize> = local_relations(&covered).collect();
        assert_eq!(locals, vec![2]);
    }

    #[test]
    fn exact_count_matches_script_composition() {
        let covered = [true, true, false];
        // r3 updates free, r1/r2 updates cost 2 messages each.
        assert_eq!(m_eca_aux_exact(&[2, 2, 2], &covered), 0);
        assert_eq!(m_eca_aux_exact(&[0, 1, 2], &covered), 4);
        assert_eq!(m_eca_aux_exact(&[0, 1, 0, 1], &covered), 8);
    }

    #[test]
    fn full_coverage_predicts_zero_messages() {
        assert_eq!(m_eca_aux(50, &[true, true, true]), 0.0);
        assert_eq!(m_eca_aux_exact(&[0, 1, 2, 1, 0], &[true; 3]), 0);
    }

    #[test]
    fn no_coverage_degenerates_to_eca() {
        let k = 25;
        assert_eq!(m_eca_aux(k, &[false; 3]), crate::messages::m_eca(k) as f64);
    }

    #[test]
    fn bytes_scale_with_remote_updates_only() {
        let p = Params::default();
        assert_eq!(b_eca_aux_best(&p, 0), 0.0);
        assert_eq!(b_eca_aux_best(&p, 3), crate::bytes::b_eca_best(&p, 3));
    }

    #[test]
    fn storage_counts_covered_relations() {
        let p = Params::default();
        assert_eq!(aux_storage_tuples(&p, &[true, true, true]), 300);
        assert_eq!(aux_storage_tuples(&p, &[true, false, false]), 100);
        assert_eq!(aux_storage_tuples(&p, &[false; 3]), 0);
    }
}
