//! Crossover finding: the `k` beyond which recomputation beats
//! incremental maintenance (§6.2–6.3's headline numbers).

/// Find the smallest `k` in `1..=max_k` where `cost_a(k) >= cost_b(k)`,
/// i.e. where curve `a` stops being cheaper. Returns `None` if `a` stays
/// cheaper throughout.
pub fn crossover_k(
    max_k: u64,
    cost_a: impl Fn(u64) -> f64,
    cost_b: impl Fn(u64) -> f64,
) -> Option<u64> {
    (1..=max_k).find(|&k| cost_a(k) >= cost_b(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bytes, io};
    use eca_workload::Params;

    #[test]
    fn headline_crossovers() {
        let p = Params::default();
        // Bytes: ECA-best vs RV-best crosses at k = C = 100.
        let k = crossover_k(200, |k| bytes::b_eca_best(&p, k), |_| bytes::b_rv_best(&p));
        assert_eq!(k, Some(100));
        // Bytes: ECA-worst crosses at 30 (paper: "30 or more updates").
        let k = crossover_k(200, |k| bytes::b_eca_worst(&p, k), |_| bytes::b_rv_best(&p));
        assert_eq!(k, Some(30));
        // IO Scenario 1: k = 3.
        let k = crossover_k(
            50,
            |k| io::scenario1::eca_best(&p, k) as f64,
            |_| io::scenario1::rv_best(&p) as f64,
        );
        assert_eq!(k, Some(3));
        // IO Scenario 2: worst case crosses at 6, best case at 9.
        let k = crossover_k(
            50,
            |k| io::scenario2::eca_worst(&p, k),
            |_| io::scenario2::rv_best(&p) as f64,
        );
        assert_eq!(k, Some(6));
        let k = crossover_k(
            50,
            |k| io::scenario2::eca_best(&p, k) as f64,
            |_| io::scenario2::rv_best(&p) as f64,
        );
        assert_eq!(k, Some(9));
    }

    #[test]
    fn no_crossover_returns_none() {
        assert_eq!(crossover_k(10, |_| 0.0, |_| 1.0), None);
    }
}
