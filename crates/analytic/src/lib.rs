//! The paper's closed-form cost model (§6 and Appendix D).
//!
//! Every equation the paper derives for the RV-vs-ECA comparison is
//! reproduced here so the benchmark harness can plot analytic curves next
//! to measured ones:
//!
//! * **Messages** (§6.1): `M_RV = 2⌈k/s⌉`, `M_ECA = 2k`.
//! * **Bytes transferred** (§6.2, App. D.2) — best/worst for both
//!   algorithms, 3-update and general-`k` forms.
//! * **I/O** (§6.3, App. D.3) — Scenario 1 (indexes + ample memory) and
//!   Scenario 2 (no indexes, 3 memory blocks), best/worst, 3-update and
//!   general-`k` forms.
//!
//! All byte formulas scale with `S·σ`; the measured counterpart in
//! `eca-sim` reports answer *tuples* so `S × tuples` can be compared
//! directly against these curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod crossover;
pub mod io;
pub mod messages;
pub mod selfmaint;

pub use eca_workload::Params;
