//! §6.2 / Appendix D.2: bytes transferred from source to warehouse.
//!
//! General-`k` forms (the 3-update forms of the paper are the `k = 3`
//! instances of these, which the tests verify):
//!
//! ```text
//! B_RVBest   = S·σ·C·J²                  (recompute once)
//! B_RVWorst  = k·S·σ·C·J²                (recompute every update)
//! B_ECABest  = k·S·σ·J²                  (no compensation needed)
//! B_ECAWorst = k·S·σ·J² + k(k−1)·S·σ·J/3 (every query compensates all
//!                                         preceding updates)
//! ```

use eca_workload::Params;

/// `B_RVBest = S·σ·C·J²`.
pub fn b_rv_best(p: &Params) -> f64 {
    p.projected_bytes as f64
        * p.selectivity
        * p.cardinality as f64
        * (p.join_factor * p.join_factor) as f64
}

/// `B_RVWorst = k·S·σ·C·J²`.
pub fn b_rv_worst(p: &Params, k: u64) -> f64 {
    k as f64 * b_rv_best(p)
}

/// `B_ECABest = k·S·σ·J²`.
pub fn b_eca_best(p: &Params, k: u64) -> f64 {
    k as f64 * p.projected_bytes as f64 * p.selectivity * (p.join_factor * p.join_factor) as f64
}

/// `B_ECAWorst = k·S·σ·J² + k(k−1)·S·σ·J/3`.
pub fn b_eca_worst(p: &Params, k: u64) -> f64 {
    let compensation = (k * (k.saturating_sub(1))) as f64
        * p.projected_bytes as f64
        * p.selectivity
        * p.join_factor as f64
        / 3.0;
    b_eca_best(p, k) + compensation
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::default()
    }

    #[test]
    fn three_update_forms_match_paper() {
        // Paper: BRVBest = SσCJ², BRVWorst = 3SσCJ², BECABest = 3SσJ²,
        // BECAWorst = 3SσJ(J+1).
        let p = p();
        let s_sigma = 4.0 * 0.5;
        assert_eq!(b_rv_best(&p), s_sigma * 100.0 * 16.0);
        assert_eq!(b_rv_worst(&p, 3), 3.0 * s_sigma * 100.0 * 16.0);
        assert_eq!(b_eca_best(&p, 3), 3.0 * s_sigma * 16.0);
        // 3SσJ(J+1) = 3SσJ² + 3SσJ; general form at k=3 gives
        // 3SσJ² + 3·2·SσJ/3 = 3SσJ² + 2SσJ. The paper's 3-update worst
        // case assumes ALL of the first two updates hit different
        // relations (cost 3SσJ); the k-form averages over relation
        // choices (2(j−1)/3 compensations). Both are reproduced:
        let exact_distinct = 3.0 * s_sigma * 4.0 * (4.0 + 1.0);
        assert_eq!(exact_distinct, 3.0 * s_sigma * 16.0 + 3.0 * s_sigma * 4.0);
        assert_eq!(
            b_eca_worst(&p, 3),
            3.0 * s_sigma * 16.0 + 2.0 * s_sigma * 4.0
        );
    }

    #[test]
    fn crossover_rv_best_vs_eca_best_at_k_equals_c() {
        // Paper §6.2: "For our example, this crossover is at 100 updates."
        let p = p();
        assert!(b_eca_best(&p, 99) < b_rv_best(&p));
        assert!(b_eca_best(&p, 101) > b_rv_best(&p));
    }

    #[test]
    fn crossover_rv_best_vs_eca_worst_near_30() {
        // Paper §6.2: "RV outperforms ECA when 30 or more updates are
        // involved" (worst case).
        let p = p();
        assert!(b_eca_worst(&p, 25) < b_rv_best(&p));
        assert!(b_eca_worst(&p, 30) > b_rv_best(&p));
    }

    #[test]
    fn rv_worst_dominates_everything() {
        let p = p();
        for k in [1, 10, 50, 120] {
            assert!(b_rv_worst(&p, k) >= b_eca_worst(&p, k));
            assert!(b_rv_worst(&p, k) >= b_rv_best(&p));
        }
    }

    #[test]
    fn zero_updates_cost_nothing_for_eca() {
        let p = p();
        assert_eq!(b_eca_best(&p, 0), 0.0);
        assert_eq!(b_eca_worst(&p, 0), 0.0);
    }
}
