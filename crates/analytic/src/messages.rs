//! §6.1: message counts.

/// `M_RV = 2⌈k/s⌉` — RV sends one query and receives one answer every `s`
/// updates.
pub fn m_rv(k: u64, s: u64) -> u64 {
    assert!(s >= 1, "recompute period must be >= 1");
    2 * k.div_ceil(s)
}

/// `M_ECA = 2k` — ECA always sends one query and receives one answer per
/// update.
pub fn m_eca(k: u64) -> u64 {
    2 * k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rv_bounds_from_the_paper() {
        // "RV generates at least 2 messages (s = k) and at most 2k (s=1)."
        let k = 17;
        assert_eq!(m_rv(k, k), 2);
        assert_eq!(m_rv(k, 1), 2 * k);
        // Ceiling behaviour.
        assert_eq!(m_rv(5, 2), 6);
    }

    #[test]
    fn eca_is_always_2k() {
        for k in [0, 1, 10, 120] {
            assert_eq!(m_eca(k), 2 * k);
        }
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        m_rv(3, 0);
    }
}
