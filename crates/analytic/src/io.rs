//! §6.3 / Appendix D.3: I/O counts at the source.
//!
//! `I = ⌈C/K⌉`, `I′ = ⌈C/2K⌉`. The general-`k` forms assume `J < I` (the
//! likely case, and the paper's stated assumption for its k-update
//! equations); the 3-update forms use `min(J, I)` explicitly.

use eca_workload::Params;

/// Scenario 1 (indexes + ample memory).
pub mod scenario1 {
    use super::*;

    /// `IO_RVBest = 3I` — read all three relations once.
    pub fn rv_best(p: &Params) -> u64 {
        3 * p.blocks_per_relation()
    }

    /// `IO_RVWorst = 3kI` — recompute after every update.
    pub fn rv_worst(p: &Params, k: u64) -> u64 {
        k * rv_best(p)
    }

    /// 3-update `IO_ECABest = 3·min(I, J) + 3`.
    pub fn eca_best_3(p: &Params) -> u64 {
        3 * p.blocks_per_relation().min(p.join_factor) + 3
    }

    /// 3-update `IO_ECAWorst = 3·min(I, J) + 6`.
    pub fn eca_worst_3(p: &Params) -> u64 {
        eca_best_3(p) + 3
    }

    /// k-update `IO_ECABest = k(J + 1)` (assumes `J < I`).
    pub fn eca_best(p: &Params, k: u64) -> u64 {
        k * (p.join_factor + 1)
    }

    /// k-update `IO_ECAWorst = k(J + 1) + k(k − 1)/3`.
    pub fn eca_worst(p: &Params, k: u64) -> f64 {
        eca_best(p, k) as f64 + (k * k.saturating_sub(1)) as f64 / 3.0
    }
}

/// Scenario 2 (no indexes, three free memory blocks).
pub mod scenario2 {
    use super::*;

    /// `IO_RVBest = I³`.
    pub fn rv_best(p: &Params) -> u64 {
        p.blocks_per_relation().pow(3)
    }

    /// `IO_RVWorst = kI³`.
    pub fn rv_worst(p: &Params, k: u64) -> u64 {
        k * rv_best(p)
    }

    /// 3-update `IO_ECABest = 3·I·I′`.
    pub fn eca_best_3(p: &Params) -> u64 {
        3 * p.blocks_per_relation() * p.double_blocks_per_relation()
    }

    /// 3-update `IO_ECAWorst = 3·I·(I′ + 1)`.
    pub fn eca_worst_3(p: &Params) -> u64 {
        3 * p.blocks_per_relation() * (p.double_blocks_per_relation() + 1)
    }

    /// k-update `IO_ECABest = k·I·I′`.
    pub fn eca_best(p: &Params, k: u64) -> u64 {
        k * p.blocks_per_relation() * p.double_blocks_per_relation()
    }

    /// k-update `IO_ECAWorst = k·I·I′ + I·k(k − 1)/3`.
    pub fn eca_worst(p: &Params, k: u64) -> f64 {
        eca_best(p, k) as f64
            + p.blocks_per_relation() as f64 * (k * k.saturating_sub(1)) as f64 / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::default()
    }

    #[test]
    fn defaults_give_paper_constants() {
        // I = 5, I' = 3 for C=100, K=20.
        let p = p();
        assert_eq!(scenario1::rv_best(&p), 15);
        assert_eq!(scenario1::rv_worst(&p, 3), 45);
        // min(I,J)=4: ECABest(3) = 15, ECAWorst(3) = 18.
        assert_eq!(scenario1::eca_best_3(&p), 15);
        assert_eq!(scenario1::eca_worst_3(&p), 18);

        assert_eq!(scenario2::rv_best(&p), 125);
        assert_eq!(scenario2::rv_worst(&p, 3), 375);
        assert_eq!(scenario2::eca_best_3(&p), 45);
        assert_eq!(scenario2::eca_worst_3(&p), 60);
    }

    #[test]
    fn scenario1_crossover_at_k_3() {
        // Paper §6.3: crossover at k = 3 for Scenario 1 (ECA-best 5k vs
        // RV-best 15).
        let p = p();
        assert!(scenario1::eca_best(&p, 2) < scenario1::rv_best(&p));
        assert_eq!(scenario1::eca_best(&p, 3), scenario1::rv_best(&p));
        assert!(scenario1::eca_best(&p, 4) > scenario1::rv_best(&p));
    }

    #[test]
    fn scenario2_crossover_between_5_and_8() {
        // Paper §6.3: "5 < k < 8" for Scenario 2.
        let p = p();
        // Worst case crosses first:
        assert!(scenario2::eca_worst(&p, 5) < scenario2::rv_best(&p) as f64);
        assert!(scenario2::eca_worst(&p, 6) > scenario2::rv_best(&p) as f64);
        // Best case crosses later:
        assert!(scenario2::eca_best(&p, 8) < scenario2::rv_best(&p));
        assert!(scenario2::eca_best(&p, 9) > scenario2::rv_best(&p));
    }

    #[test]
    fn small_j_lets_eca_win_arbitrarily_in_scenario1() {
        // Paper: "if J < I, ECA can outperform RV arbitrarily".
        let big = Params {
            cardinality: 10_000,
            ..Params::default()
        };
        assert!(scenario1::eca_best_3(&big) < scenario1::rv_best(&big));
        assert!(
            scenario1::rv_best(&big) - scenario1::eca_best_3(&big)
                > 3 * (big.blocks_per_relation() - big.join_factor) - 10
        );
    }

    #[test]
    fn worst_cases_dominate_best_cases() {
        let p = p();
        for k in [1, 3, 7, 11] {
            assert!(scenario1::eca_worst(&p, k) >= scenario1::eca_best(&p, k) as f64);
            assert!(scenario2::eca_worst(&p, k) >= scenario2::eca_best(&p, k) as f64);
            assert!(scenario1::rv_worst(&p, k) >= scenario1::rv_best(&p));
            assert!(scenario2::rv_worst(&p, k) >= scenario2::rv_best(&p));
        }
    }
}
