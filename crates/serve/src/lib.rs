//! The online read-serving front end (ROADMAP item 4).
//!
//! Maintenance keeps views fresh; this crate makes them *readable under
//! load*. A [`ReadServer`] answers [`eca_wire::Message::ReadQuery`]
//! requests from an [`EpochRegistry`] — the snapshot store the
//! warehouse publishes into after every maintenance event — so read
//! traffic touches only published `Arc` snapshots and never blocks (or
//! is blocked by) maintenance. Clients pick a §3 consistency level per
//! read ([`ReadLevel`]):
//!
//! * `Convergent` — any published epoch,
//! * `Weak` — published epochs, monotonic per client (the client
//!   carries its epoch floor in the request, so the guarantee survives
//!   disconnect/reconnect),
//! * `Strong` — the latest epoch published while the view was
//!   quiescent: a §3.1 state-history member, read-your-latest-epoch.
//!
//! Two deployment shapes share the same protocol:
//!
//! * [`ReadServer::serve_ready`] pumps any [`Transport`] — the bench
//!   multiplexes thousands of in-process [`eca_wire::SharedFifo`]
//!   clients over a few worker threads this way;
//! * [`serve_listener`] opens a real TCP port: an accept thread admits
//!   clients into a station table, one [`eca_wire::Poller`] thread
//!   watches every socket, and a fixed worker pool drains whichever
//!   stations have readable bytes (the reactor pattern of
//!   `eca-warehouse`, applied to the read path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use eca_core::QueryId;
use eca_relational::SignedBag;
use eca_warehouse::EpochRegistry;
use eca_wire::{
    Message, PollWaker, Poller, ReadLevel, Role, TcpTransport, TransferMeter, Transport,
    TransportError,
};

/// Errors raised by the serving layer (either side).
#[derive(Debug)]
pub enum ServeError {
    /// The underlying transport failed.
    Transport(TransportError),
    /// The server answered with [`Message::ReadError`].
    Remote {
        /// Correlation id of the failed read.
        id: QueryId,
        /// The server's reason.
        reason: String,
    },
    /// A message that is not part of the read protocol arrived.
    Protocol {
        /// The offending message kind.
        kind: &'static str,
    },
    /// The server answered below the client's monotonicity floor — a
    /// consistency violation (never expected; surfaced so tests and the
    /// bench can count violations instead of silently regressing).
    NonMonotonic {
        /// The view read.
        view: u64,
        /// The client's floor at send time.
        floor: u64,
        /// The epoch actually served.
        got: u64,
    },
    /// The channel closed before the answer arrived.
    Disconnected,
    /// A read was begun while another was still in flight.
    Busy,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Transport(e) => write!(f, "transport error: {e}"),
            ServeError::Remote { id, reason } => write!(f, "read {id:?} failed: {reason}"),
            ServeError::Protocol { kind } => write!(f, "unexpected {kind} on a read channel"),
            ServeError::NonMonotonic { view, floor, got } => write!(
                f,
                "view {view}: epoch {got} served below the client floor {floor}"
            ),
            ServeError::Disconnected => write!(f, "connection closed mid-read"),
            ServeError::Busy => write!(f, "a read is already in flight on this client"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Transport(e)
    }
}

// ---------------------------------------------------------------------------
// Server side.
// ---------------------------------------------------------------------------

/// A stateless read responder over a shared [`EpochRegistry`].
///
/// Stateless is the point: all per-client consistency state (the epoch
/// floor) travels in the request, so any worker can serve any client,
/// and a client that reconnects to a different worker — or a different
/// server — keeps its guarantees.
pub struct ReadServer {
    registry: Arc<EpochRegistry>,
}

impl ReadServer {
    /// A server over `registry`.
    pub fn new(registry: Arc<EpochRegistry>) -> ReadServer {
        ReadServer { registry }
    }

    /// The registry served.
    pub fn registry(&self) -> &Arc<EpochRegistry> {
        &self.registry
    }

    /// Answer one inbound message. Read queries get a
    /// [`Message::ReadAnswer`] (or [`Message::ReadError`] for an
    /// unknown view); anything else gets a `ReadError` naming the
    /// protocol violation — a read channel never carries maintenance
    /// traffic.
    pub fn respond(&self, msg: Message) -> Message {
        match msg {
            Message::ReadQuery {
                id,
                view,
                level,
                min_epoch,
            } => match self.registry.read(view as usize, level, min_epoch) {
                Some(snap) => Message::ReadAnswer {
                    id,
                    view,
                    epoch: snap.epoch,
                    latest: snap.latest,
                    rows: (*snap.rows).clone(),
                },
                None => Message::ReadError {
                    id,
                    reason: format!("unknown view #{view}"),
                },
            },
            other => Message::ReadError {
                id: QueryId(0),
                reason: format!("unexpected {} on a read channel", kind_of(&other)),
            },
        }
    }

    /// Drain every request currently available on `transport` and send
    /// the answers back. Returns the number of requests served.
    ///
    /// # Errors
    /// Transport faults (including framing errors from hostile
    /// prefixes) — the caller should drop the connection.
    pub fn serve_ready(&self, transport: &mut dyn Transport) -> Result<usize, TransportError> {
        let mut served = 0;
        while let Some(msg) = transport.try_recv()? {
            transport.send(&self.respond(msg))?;
            served += 1;
        }
        Ok(served)
    }
}

fn kind_of(msg: &Message) -> &'static str {
    match msg {
        Message::UpdateNotification { .. } => "UpdateNotification",
        Message::QueryRequest { .. } => "QueryRequest",
        Message::QueryAnswer { .. } => "QueryAnswer",
        Message::Frame { .. } => "Frame",
        Message::Ack { .. } => "Ack",
        Message::Hello { .. } => "Hello",
        Message::ReadQuery { .. } => "ReadQuery",
        Message::ReadAnswer { .. } => "ReadAnswer",
        Message::ReadError { .. } => "ReadError",
    }
}

// ---------------------------------------------------------------------------
// TCP front end.
// ---------------------------------------------------------------------------

/// One admitted client connection. `conn: None` marks a dead station
/// awaiting compaction.
struct Station {
    conn: Mutex<Option<TcpTransport>>,
}

struct ListenerShared {
    server: ReadServer,
    stations: Mutex<Vec<Arc<Station>>>,
    waker: Arc<PollWaker>,
    shutdown: AtomicBool,
    served: AtomicU64,
}

/// Handle to a running TCP read server; dropping it without calling
/// [`ServeHandle::shutdown`] leaks the serving threads.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<ListenerShared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (use with `TcpTransport::connect`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total read requests served so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain the pool and join every thread.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.waker.notify();
        // Unblock the accept thread with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
        for st in self
            .shared
            .stations
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            if let Ok(mut guard) = st.conn.lock() {
                if let Some(mut conn) = guard.take() {
                    conn.close();
                }
            }
        }
    }
}

/// Open a TCP read-serving port over `registry`: an accept thread, one
/// poller thread watching every client socket, and `workers` serving
/// threads multiplexing all admitted stations (readiness-driven — the
/// reactor discipline, so thousands of mostly-idle clients cost no
/// spinning).
///
/// # Errors
/// Binding or poller-spawn failures.
pub fn serve_listener(
    addr: impl ToSocketAddrs,
    registry: Arc<EpochRegistry>,
    workers: usize,
) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let poller = Poller::new()?;
    let shared = Arc::new(ListenerShared {
        server: ReadServer::new(registry),
        stations: Mutex::new(Vec::new()),
        waker: PollWaker::new(),
        shutdown: AtomicBool::new(false),
        served: AtomicU64::new(0),
    });

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        let poller = Arc::clone(&poller);
        threads.push(std::thread::spawn(move || {
            accept_duty(&listener, &shared, &poller);
        }));
    }
    for _ in 0..workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_duty(&shared)));
    }

    Ok(ServeHandle {
        addr: local,
        shared,
        threads,
    })
}

fn accept_duty(listener: &TcpListener, shared: &ListenerShared, poller: &Arc<Poller>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(mut conn) = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()) else {
            continue;
        };
        conn.attach_poller(Arc::clone(poller));
        if !conn.set_waker(Arc::clone(&shared.waker)) {
            continue; // cannot happen with a poller attached
        }
        let mut stations = shared
            .stations
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Compact dead stations while we hold the lock anyway.
        stations.retain(|st| match st.conn.try_lock() {
            Ok(guard) => guard.is_some(),
            Err(_) => true, // busy in a worker — certainly alive
        });
        stations.push(Arc::new(Station {
            conn: Mutex::new(Some(conn)),
        }));
        drop(stations);
        shared.waker.notify();
    }
}

fn worker_duty(shared: &ListenerShared) {
    loop {
        let seen = shared.waker.epoch();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stations: Vec<Arc<Station>> = shared
            .stations
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let mut progressed = false;
        for st in &stations {
            // Busy-claim: exactly one worker serves a station at a time.
            let Ok(mut guard) = st.conn.try_lock() else {
                continue;
            };
            let Some(conn) = guard.as_mut() else { continue };
            match shared.server.serve_ready(conn) {
                Ok(0) => {
                    if matches!(conn.poll(), Ok(eca_wire::Readiness::Closed) | Err(_)) {
                        if let Some(mut dead) = guard.take() {
                            dead.close();
                        }
                    }
                }
                Ok(n) => {
                    shared.served.fetch_add(n as u64, Ordering::Relaxed);
                    progressed = true;
                }
                Err(_) => {
                    // Fault (truncation, framing error, hostile prefix):
                    // tear the connection down; the client's floor
                    // travels with the client, so nothing is lost.
                    if let Some(mut dead) = guard.take() {
                        dead.close();
                    }
                }
            }
        }
        if !progressed {
            shared.waker.wait(seen, Duration::from_millis(25));
        }
    }
}

// ---------------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------------

/// One completed read.
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The view read.
    pub view: u64,
    /// Level the read was served at.
    pub level: ReadLevel,
    /// Epoch of the served snapshot.
    pub epoch: u64,
    /// Latest published epoch at serve time.
    pub latest: u64,
    /// The rows.
    pub rows: SignedBag,
}

impl ReadOutcome {
    /// Staleness of this answer, in epochs behind the latest published.
    pub fn staleness(&self) -> u64 {
        self.latest.saturating_sub(self.epoch)
    }
}

/// A read client over any [`Transport`], tracking per-view epoch floors
/// so weak/strong reads stay monotonic — including across reconnects:
/// extract the floors with [`ReadClient::floors`] before dropping a
/// dead connection and restore them with [`ReadClient::with_floors`] on
/// the new one.
pub struct ReadClient<T: Transport> {
    transport: T,
    next_id: u64,
    /// Highest epoch observed per `(view, level)`.
    floors: BTreeMap<(u64, ReadLevel), u64>,
    /// The read in flight, if any: `(id, view, level, floor at send)`.
    pending: Option<(QueryId, u64, ReadLevel, u64)>,
}

impl<T: Transport> ReadClient<T> {
    /// A fresh client (no floors).
    pub fn new(transport: T) -> ReadClient<T> {
        ReadClient::with_floors(transport, BTreeMap::new())
    }

    /// A client resuming with floors carried over from a previous
    /// connection — the reconnect path: monotonicity is a property of
    /// the *client*, not the connection.
    pub fn with_floors(transport: T, floors: BTreeMap<(u64, ReadLevel), u64>) -> ReadClient<T> {
        ReadClient {
            transport,
            next_id: 1,
            floors,
            pending: None,
        }
    }

    /// The current floors, for carrying across a reconnect.
    pub fn floors(&self) -> BTreeMap<(u64, ReadLevel), u64> {
        self.floors.clone()
    }

    /// The underlying transport (e.g. to inspect its meter).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Give the transport back (e.g. to close it explicitly).
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Send a read without waiting for the answer. At most one read may
    /// be in flight per client (the channel is FIFO).
    ///
    /// # Errors
    /// [`ServeError::Busy`] if a read is already pending; transport
    /// faults.
    pub fn begin_read(&mut self, view: u64, level: ReadLevel) -> Result<QueryId, ServeError> {
        if self.pending.is_some() {
            return Err(ServeError::Busy);
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let floor = match level {
            ReadLevel::Convergent => 0,
            _ => *self.floors.get(&(view, level)).unwrap_or(&0),
        };
        self.transport.send(&Message::ReadQuery {
            id,
            view,
            level,
            min_epoch: floor,
        })?;
        self.pending = Some((id, view, level, floor));
        Ok(id)
    }

    /// Non-blocking: collect the pending read's answer if it arrived.
    ///
    /// # Errors
    /// [`ServeError::Disconnected`] on channel close mid-read;
    /// [`ServeError::NonMonotonic`] when the served epoch regressed
    /// below the floor; remote/protocol/transport failures.
    pub fn try_finish(&mut self) -> Result<Option<ReadOutcome>, ServeError> {
        if self.pending.is_none() {
            return Ok(None);
        }
        match self.transport.try_recv() {
            Ok(Some(msg)) => self.accept(msg).map(Some),
            Ok(None) => {
                if matches!(self.transport.poll(), Ok(eca_wire::Readiness::Closed)) {
                    return Err(ServeError::Disconnected);
                }
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Blocking read: send and wait for the answer.
    ///
    /// # Errors
    /// As [`ReadClient::begin_read`] and [`ReadClient::try_finish`].
    pub fn read(&mut self, view: u64, level: ReadLevel) -> Result<ReadOutcome, ServeError> {
        self.begin_read(view, level)?;
        match self.transport.recv()? {
            Some(msg) => self.accept(msg),
            None => Err(ServeError::Disconnected),
        }
    }

    fn accept(&mut self, msg: Message) -> Result<ReadOutcome, ServeError> {
        let (id, view, level, floor) = self.pending.take().expect("accept without pending");
        match msg {
            Message::ReadAnswer {
                id: got_id,
                view: got_view,
                epoch,
                latest,
                rows,
            } => {
                if got_id != id || got_view != view {
                    return Err(ServeError::Protocol {
                        kind: "mis-correlated ReadAnswer",
                    });
                }
                if level != ReadLevel::Convergent && epoch < floor {
                    return Err(ServeError::NonMonotonic {
                        view,
                        floor,
                        got: epoch,
                    });
                }
                let slot = self.floors.entry((view, level)).or_insert(0);
                *slot = (*slot).max(epoch);
                Ok(ReadOutcome {
                    view,
                    level,
                    epoch,
                    latest,
                    rows,
                })
            }
            Message::ReadError { id, reason } => Err(ServeError::Remote { id, reason }),
            other => Err(ServeError::Protocol {
                kind: kind_of(&other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;
    use eca_wire::InMemoryFifo;

    fn registry() -> Arc<EpochRegistry> {
        Arc::new(EpochRegistry::new(
            [SignedBag::from_tuples([Tuple::ints([1])])],
            4,
        ))
    }

    #[test]
    fn serve_answers_reads_and_rejects_maintenance_traffic() {
        let reg = registry();
        let server = ReadServer::new(Arc::clone(&reg));
        let (client_end, mut server_end) = InMemoryFifo::pair(TransferMeter::new());

        let mut client = ReadClient::new(client_end);
        client.begin_read(0, ReadLevel::Strong).unwrap();
        server.serve_ready(&mut server_end).unwrap();
        let got = client.try_finish().unwrap().unwrap();
        assert_eq!(got.epoch, 0);
        assert_eq!(got.rows, SignedBag::from_tuples([Tuple::ints([1])]));

        // Maintenance traffic on a read channel is a remote error.
        client
            .transport_mut()
            .send(&Message::Hello { epoch: 3 })
            .unwrap();
        server.serve_ready(&mut server_end).unwrap();
        match client.transport_mut().try_recv().unwrap().unwrap() {
            Message::ReadError { reason, .. } => assert!(reason.contains("Hello")),
            other => panic!("expected ReadError, got {other:?}"),
        }
    }

    #[test]
    fn unknown_view_is_a_remote_error() {
        let server = ReadServer::new(registry());
        let answer = server.respond(Message::ReadQuery {
            id: QueryId(5),
            view: 99,
            level: ReadLevel::Convergent,
            min_epoch: 0,
        });
        match answer {
            Message::ReadError { id, reason } => {
                assert_eq!(id, QueryId(5));
                assert!(reason.contains("99"));
            }
            other => panic!("expected ReadError, got {other:?}"),
        }
    }

    #[test]
    fn floors_survive_reconnect() {
        let reg = registry();
        reg.publish(0, &SignedBag::from_tuples([Tuple::ints([2])]), true);
        let server = ReadServer::new(Arc::clone(&reg));

        let (c1, mut s1) = InMemoryFifo::pair(TransferMeter::new());
        let mut client = ReadClient::new(c1);
        client.begin_read(0, ReadLevel::Weak).unwrap();
        server.serve_ready(&mut s1).unwrap();
        let first = client.try_finish().unwrap().unwrap();
        let floors = client.floors();
        assert_eq!(floors.get(&(0, ReadLevel::Weak)), Some(&first.epoch));

        // "Reconnect": a brand-new channel, floors carried over. The
        // weak read must not regress even though the oldest ring entry
        // is older than the floor.
        let (c2, mut s2) = InMemoryFifo::pair(TransferMeter::new());
        let mut client = ReadClient::with_floors(c2, floors);
        client.begin_read(0, ReadLevel::Weak).unwrap();
        server.serve_ready(&mut s2).unwrap();
        let second = client.try_finish().unwrap().unwrap();
        assert!(second.epoch >= first.epoch);
    }
}
