//! Checker for the paper's §3.1 correctness hierarchy.
//!
//! A view-maintenance execution yields two state sequences:
//!
//! * source view states `V[ss_0], V[ss_1], …, V[ss_p]` (the view evaluated
//!   at the source after the initial state and each update), and
//! * warehouse view states `V[ws_0], V[ws_1], …, V[ws_q]` (`MV` after the
//!   initial state and each warehouse event).
//!
//! Over these, the paper defines (quoting §3.1):
//!
//! * **Convergence** — `V[ws_q] = V[ss_p]`: after all activity ceases the
//!   view agrees with the source.
//! * **Weak consistency** — every warehouse state equals *some* source
//!   state.
//! * **Consistency** — every warehouse state equals some source state,
//!   *in a corresponding order*: there is a monotone mapping from
//!   warehouse states to source states.
//! * **Strong consistency** — consistency and convergence.
//! * **Completeness** — strong consistency, and every source state appears
//!   as some warehouse state (an order-preserving one-to-one-onto
//!   correspondence of distinct states).
//!
//! The checker works on the recorded [`SignedBag`] sequences; consecutive
//! duplicate warehouse states (events that did not change `MV`) are
//! collapsed first, which does not affect any of the properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eca_relational::SignedBag;

/// Which correctness level a history satisfies (cumulative).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Not even convergent.
    None,
    /// Convergent only.
    Convergent,
    /// Weakly consistent (and convergent histories may still only be
    /// weakly consistent if ordering fails).
    WeaklyConsistent,
    /// Consistent (ordered) but not convergent.
    Consistent,
    /// Consistent and convergent.
    StronglyConsistent,
    /// Strongly consistent and every source state is visited.
    Complete,
}

/// The outcome of checking one execution history.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// `V[ws_q] == V[ss_p]`.
    pub convergent: bool,
    /// Every warehouse state appears among source states.
    pub weakly_consistent: bool,
    /// Monotone mapping warehouse → source exists.
    pub consistent: bool,
    /// Consistent and convergent.
    pub strongly_consistent: bool,
    /// Strongly consistent and every source state appears, in order.
    pub complete: bool,
    /// Human-readable description of the first violation found, if any.
    pub violation: Option<String>,
}

impl ConsistencyReport {
    /// The highest level satisfied.
    pub fn level(&self) -> Level {
        if self.complete {
            Level::Complete
        } else if self.strongly_consistent {
            Level::StronglyConsistent
        } else if self.consistent && !self.convergent {
            Level::Consistent
        } else if self.weakly_consistent {
            // Valid states, but either out of order or non-convergent.
            Level::WeaklyConsistent
        } else if self.convergent {
            Level::Convergent
        } else {
            Level::None
        }
    }
}

/// Collapse consecutive duplicates.
fn dedup_consecutive(states: &[SignedBag]) -> Vec<&SignedBag> {
    let mut out: Vec<&SignedBag> = Vec::with_capacity(states.len());
    for s in states {
        if out.last().map_or(true, |last| *last != s) {
            out.push(s);
        }
    }
    out
}

/// Check an execution history against the §3.1 hierarchy.
///
/// `source_states` must include the initial state `V[ss_0]` first, and
/// `warehouse_states` must include the initial `MV` first.
pub fn check(source_states: &[SignedBag], warehouse_states: &[SignedBag]) -> ConsistencyReport {
    assert!(
        !source_states.is_empty(),
        "source history must include the initial state"
    );
    assert!(
        !warehouse_states.is_empty(),
        "warehouse history must include the initial state"
    );

    let src = dedup_consecutive(source_states);
    let wh = dedup_consecutive(warehouse_states);

    let convergent = src.last().unwrap() == wh.last().unwrap();

    // Weak consistency: membership, order-free.
    let mut weakly_consistent = true;
    let mut violation: Option<String> = None;
    for (i, w) in wh.iter().enumerate() {
        if !src.iter().any(|s| s == w) {
            weakly_consistent = false;
            violation.get_or_insert_with(|| {
                format!("warehouse state #{i} {w:?} matches no source state")
            });
            break;
        }
    }

    // Consistency: greedy earliest monotone match. Greedy is complete: if
    // any monotone mapping exists, mapping each warehouse state to the
    // earliest admissible source index also succeeds.
    let mut consistent = true;
    let mut cursor = 0usize;
    for (i, w) in wh.iter().enumerate() {
        match src[cursor..].iter().position(|s| s == w) {
            Some(offset) => cursor += offset,
            None => {
                consistent = false;
                if violation.is_none() {
                    violation = Some(format!(
                        "warehouse state #{i} {w:?} has no in-order source match (cursor {cursor})"
                    ));
                }
                break;
            }
        }
    }

    let strongly_consistent = consistent && convergent;

    // Completeness: additionally every (deduped) source state must appear
    // in the warehouse sequence, in order.
    let mut complete = strongly_consistent;
    if complete {
        let mut wcursor = 0usize;
        for (i, s) in src.iter().enumerate() {
            match wh[wcursor..].iter().position(|w| w == s) {
                Some(offset) => wcursor += offset,
                None => {
                    complete = false;
                    if violation.is_none() {
                        violation = Some(format!(
                            "source state #{i} {s:?} never appears at the warehouse"
                        ));
                    }
                    break;
                }
            }
        }
    }

    if violation.is_none() && !convergent {
        violation = Some(format!(
            "not convergent: final warehouse {:?} != final source {:?}",
            wh.last().unwrap(),
            src.last().unwrap()
        ));
    }

    ConsistencyReport {
        convergent,
        weakly_consistent,
        consistent,
        strongly_consistent,
        complete,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;

    fn s(tuples: &[&[i64]]) -> SignedBag {
        SignedBag::from_tuples(tuples.iter().map(|t| Tuple::ints(t.iter().copied())))
    }

    #[test]
    fn identical_histories_are_complete() {
        let states = vec![s(&[]), s(&[&[1]]), s(&[&[1], &[4]])];
        let r = check(&states, &states);
        assert!(r.complete);
        assert_eq!(r.level(), Level::Complete);
        assert!(r.violation.is_none());
    }

    #[test]
    fn skipping_intermediate_states_is_strong_but_not_complete() {
        // Warehouse jumps straight to the final state (ECA's behaviour).
        let src = vec![s(&[]), s(&[&[1]]), s(&[&[1], &[4]])];
        let wh = vec![s(&[]), s(&[&[1], &[4]])];
        let r = check(&src, &wh);
        assert!(r.strongly_consistent);
        assert!(!r.complete);
        assert_eq!(r.level(), Level::StronglyConsistent);
    }

    #[test]
    fn example_2_anomaly_is_not_even_weakly_consistent() {
        // Source: ∅ → ([1]) → ([1],[4]).
        let src = vec![s(&[]), s(&[&[1]]), s(&[&[1], &[4]])];
        // Basic-algorithm warehouse: ∅ → ([1],[4]) → ([1],[4],[4]).
        let wh = vec![s(&[]), s(&[&[1], &[4]]), s(&[&[1], &[4], &[4]])];
        let r = check(&src, &wh);
        assert!(!r.convergent);
        assert!(!r.weakly_consistent);
        assert_eq!(r.level(), Level::None);
        assert!(r.violation.is_some());
    }

    #[test]
    fn convergent_but_invalid_intermediate_state() {
        // Warehouse passes through a state the source never had, but ends
        // correctly: convergent only.
        let src = vec![s(&[]), s(&[&[1]]), s(&[&[1], &[4]])];
        let wh = vec![s(&[]), s(&[&[9]]), s(&[&[1], &[4]])];
        let r = check(&src, &wh);
        assert!(r.convergent);
        assert!(!r.weakly_consistent);
        assert!(!r.consistent);
        assert_eq!(r.level(), Level::Convergent);
    }

    #[test]
    fn out_of_order_states_are_weak_only() {
        // Warehouse visits valid states in the wrong order and does not
        // converge — weakly consistent only.
        let src = vec![s(&[]), s(&[&[1]]), s(&[&[1], &[4]])];
        let wh = vec![s(&[]), s(&[&[1], &[4]]), s(&[&[1]])];
        let r = check(&src, &wh);
        assert!(r.weakly_consistent);
        assert!(!r.consistent);
        assert!(!r.convergent);
        assert_eq!(r.level(), Level::WeaklyConsistent);
    }

    #[test]
    fn consistent_but_not_convergent() {
        // In-order valid prefix, but the warehouse stops early.
        let src = vec![s(&[]), s(&[&[1]]), s(&[&[1], &[4]])];
        let wh = vec![s(&[]), s(&[&[1]])];
        let r = check(&src, &wh);
        assert!(r.consistent);
        assert!(!r.convergent);
        assert!(!r.strongly_consistent);
        assert_eq!(r.level(), Level::Consistent);
    }

    #[test]
    fn consecutive_duplicates_are_collapsed() {
        let src = vec![s(&[]), s(&[&[1]])];
        let wh = vec![s(&[]), s(&[]), s(&[]), s(&[&[1]]), s(&[&[1]])];
        let r = check(&src, &wh);
        assert!(r.complete);
    }

    #[test]
    fn revisited_states_allowed_when_source_revisits() {
        // Source: ∅ → ([1]) → ∅ (insert then delete). Warehouse follows.
        let src = vec![s(&[]), s(&[&[1]]), s(&[])];
        let wh = vec![s(&[]), s(&[&[1]]), s(&[])];
        let r = check(&src, &wh);
        assert!(r.complete);
    }

    #[test]
    #[should_panic(expected = "source history")]
    fn empty_source_history_panics() {
        let wh = vec![s(&[])];
        check(&[], &wh);
    }

    #[test]
    fn level_ordering_is_meaningful() {
        assert!(Level::Complete > Level::StronglyConsistent);
        assert!(Level::StronglyConsistent > Level::Convergent);
        assert!(Level::Convergent > Level::None);
    }
}
