//! Chaos simulation: the multi-source warehouse driven over faulty
//! channels.
//!
//! [`ChaosSimulation`] mirrors [`MultiSimulation`](crate::MultiSimulation)
//! — same sites, same event vocabulary (`S_up`/`S_qu`/`W_up`/`W_ans`),
//! same [`Policy`] scheduling and RNG draw order — but each site's
//! channel is a pair of [`ReliableLink`]s over [`FaultyTransport`]s, so
//! the paper's §2 assumptions (reliable, FIFO, exactly-once delivery)
//! hold only as far as the session layer and the warehouse recovery
//! policy restore them. A fault-free [`ChaosProfile`] makes the stack
//! transparent: the scheduler takes exactly the same RNG draws and the
//! *logical* meters charge exactly the same bytes and messages as the
//! plain in-memory run, so golden traces carry over unchanged.
//!
//! Fault handling during a run:
//!
//! * drops, duplicates, delays and corruption are healed silently by the
//!   links (retransmission, dedup, reorder buffering, checksums);
//! * a connection reset ([`FaultKind::Reset`](eca_wire::FaultKind)) or a
//!   wedged link (retry cap exhausted) rewires the channel pair —
//!   session state survives ([`ReliableLink::reconnect`]), so nothing is
//!   lost, and the warehouse runs
//!   [`Warehouse::on_reset`]`(…, false)`: pending queries of
//!   compensation-safe views are re-issued, others degrade to an
//!   RV-style resync;
//! * a scripted **restart** ([`ChaosProfile::restarts`]) models a source
//!   crash: both endpoints lose their session state
//!   ([`ReliableLink::restart`]), in-flight notifications may be gone,
//!   and the warehouse runs `on_reset(…, true)` — every view over the
//!   site degrades and resyncs from a fresh `V(ss)` (Alg. D.1).
//!
//! Answers that reach the warehouse under a retired (stale-epoch) query
//! id are rejected by the session's strict demux before any maintainer
//! state is touched; the harness counts them as
//! [`ChaosStats::stale_answers`] and moves on.

use std::collections::{BTreeMap, VecDeque};

use eca_core::maintainer::ViewMaintainer;
use eca_core::{CoreError, QueryId};
use eca_relational::Update;
use eca_source::Source;
use eca_warehouse::{
    DurabilityConfig, RecoveryOutcome, SourceId, ViewId, Warehouse, WarehouseError,
};
use eca_wire::{
    FaultKind, FaultPlan, FaultyTransport, InMemoryFifo, Message, ReliableLink, TransferMeter,
    Transport, WireQuery,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::multi::{SiteId, SiteReport, ViewRunReport};
use crate::{Policy, SimError, TraceEvent};

/// Scheduler iterations before a run is declared livelocked. Generous:
/// idle iterations are cheap virtual-clock ticks, and even a fully
/// wedged link needs only a few thousand of them to trip its retry cap.
const STEP_CAP: u64 = 2_000_000;

type ChaosLink = ReliableLink<FaultyTransport<InMemoryFifo>>;

/// Which site a scripted restart kills.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RestartSite {
    /// The source endpoint crashes and comes back empty: session state
    /// on both ends is lost, in-flight notifications may be gone, and
    /// every view over the site resyncs from a fresh `V(ss)`.
    Source,
    /// The **warehouse** process crashes and restarts from disk: every
    /// channel (all sites) is torn down, the warehouse is rebuilt from
    /// its view factories and recovered via
    /// [`Warehouse::recover_durability`] — or, without durability, via
    /// the paper's §4 amnesia fallback (full resync everywhere).
    Warehouse,
}

/// One scripted restart event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Restart {
    /// Scheduler step at which the crash fires.
    pub at: u64,
    /// Which endpoint dies.
    pub site: RestartSite,
}

/// The fault schedule of one site's channel.
#[derive(Clone, Debug)]
pub struct ChaosProfile {
    /// Faults injected on source → warehouse sends (notification and
    /// answer frames, and the source's acks).
    pub s2w: FaultPlan,
    /// Faults injected on warehouse → source sends (query frames and the
    /// warehouse's acks).
    pub w2s: FaultPlan,
    /// Scripted restarts, ordered by step. [`RestartSite::Source`]
    /// events kill this site's source endpoint;
    /// [`RestartSite::Warehouse`] events kill the warehouse process
    /// itself (affecting every site, but scheduled here so per-site
    /// profiles stay the single source of fault truth).
    pub restarts: Vec<Restart>,
}

impl ChaosProfile {
    /// A profile that never injects anything — the stack becomes
    /// transparent and runs match [`MultiSimulation`](crate::MultiSimulation)
    /// exactly.
    pub fn none() -> Self {
        ChaosProfile {
            s2w: FaultPlan::none(),
            w2s: FaultPlan::none(),
            restarts: Vec::new(),
        }
    }

    /// The same plan on both directions, independently seeded (the
    /// reverse stream is [`FaultPlan::reseeded`] so the two directions
    /// draw different schedules).
    pub fn symmetric(plan: FaultPlan) -> Self {
        ChaosProfile {
            w2s: plan.clone().reseeded(0x5157),
            s2w: plan,
            restarts: Vec::new(),
        }
    }

    /// The same profile with scripted **source** restarts at the given
    /// scheduler steps (the historical vocabulary; see
    /// [`ChaosProfile::with_warehouse_crashes`] for the other side).
    pub fn with_restarts(mut self, steps: &[u64]) -> Self {
        self.restarts = steps
            .iter()
            .map(|&at| Restart {
                at,
                site: RestartSite::Source,
            })
            .collect();
        self.restarts.sort_unstable();
        self
    }

    /// The same profile with scripted **warehouse** crashes at the given
    /// scheduler steps. The warehouse is global, so schedule these on
    /// one site only; each fires once.
    pub fn with_warehouse_crashes(mut self, steps: &[u64]) -> Self {
        self.restarts.extend(steps.iter().map(|&at| Restart {
            at,
            site: RestartSite::Warehouse,
        }));
        self.restarts.sort_unstable();
        self
    }

    /// Whether the profile can ever perturb the channel.
    pub fn is_none(&self) -> bool {
        self.s2w.is_none() && self.w2s.is_none() && self.restarts.is_empty()
    }
}

/// Everything the chaos run injected and what it cost to heal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Scheduler iterations consumed (app events plus idle ticks).
    pub steps: u64,
    /// Messages silently dropped by the fault layer.
    pub drops: u64,
    /// Messages delivered twice by the fault layer.
    pub duplicates: u64,
    /// Messages held back (reordered) by the fault layer.
    pub delays: u64,
    /// Frames corrupted by the fault layer.
    pub corrupts: u64,
    /// Connection failures healed by rewiring (scripted resets plus
    /// wedged links).
    pub resets: u64,
    /// Scripted source restarts executed.
    pub restarts: u64,
    /// Scripted warehouse crashes executed.
    pub warehouse_restarts: u64,
    /// Update notifications re-sent by sources after a warehouse crash
    /// (the incremental-resync tail: everything past the recovered
    /// watermark).
    pub resync_notifications: u64,
    /// Source channels recovered incrementally (checkpoint + log tail)
    /// across all warehouse crashes.
    pub recovered_incremental: u64,
    /// Source channels recovered via the full §4 fallback across all
    /// warehouse crashes.
    pub recovered_full: u64,
    /// WAL records replayed during incremental recoveries — the
    /// "updates since checkpoint" the recovery cost is proportional to.
    pub wal_replayed: u64,
    /// Queries re-issued under fresh ids by the recovery policy.
    pub reissued: u64,
    /// RV-style resyncs started.
    pub resyncs_started: u64,
    /// RV-style resyncs completed (answers installed via `reset_to`).
    pub resyncs_completed: u64,
    /// Answers rejected by strict demux as addressed to a dead epoch.
    pub stale_answers: u64,
    /// Frames retransmitted by the session layer (both ends, all sites).
    pub retransmits: u64,
    /// Inbound frames the links discarded as duplicates.
    pub duplicates_dropped: u64,
    /// Inbound frames the links discarded on checksum mismatch.
    pub corrupt_dropped: u64,
}

/// Raw-vs-logical transfer accounting for one site's channel: the cost
/// of reliability itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkOverhead {
    /// Bytes the wire actually carried (frames, acks, retransmissions),
    /// both directions.
    pub raw_bytes: u64,
    /// Bytes the application logically transferred, both directions —
    /// what a fault-free in-memory run charges.
    pub logical_bytes: u64,
    /// Messages the wire actually carried, both directions.
    pub raw_messages: u64,
    /// Messages the application logically transferred, both directions.
    pub logical_messages: u64,
}

impl LinkOverhead {
    /// Extra bytes the session layer spent restoring §2 (raw − logical).
    pub fn overhead_bytes(&self) -> u64 {
        self.raw_bytes.saturating_sub(self.logical_bytes)
    }
}

/// Everything observed during one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosRunReport {
    /// One report per hosted view, in registration order.
    pub views: Vec<ViewRunReport>,
    /// One *logical* meter report per site — directly comparable to a
    /// fault-free [`MultiRunReport`](crate::MultiRunReport).
    pub sites: Vec<SiteReport>,
    /// Raw-vs-logical accounting per site.
    pub overhead: Vec<LinkOverhead>,
    /// Whether the warehouse ended with no outstanding work and every
    /// view healthy.
    pub quiescent: bool,
    /// Injection and recovery counters.
    pub stats: ChaosStats,
    /// Wall-clock time spent inside warehouse recovery (checkpoint
    /// load, log replay, resync planning), summed over every crash.
    /// Zero when no warehouse crash fired. Kept out of [`ChaosStats`]
    /// so seeded runs stay bit-for-bit comparable.
    pub recovery_time: std::time::Duration,
    /// The interleaved event trace, each event tagged with its site.
    pub trace: Vec<(SiteId, TraceEvent)>,
}

impl ChaosRunReport {
    /// Convergence (§3.1): every view's final `MV` equals the view over
    /// the final source state — the bar a chaos run must clear no matter
    /// what was injected.
    pub fn converged(&self) -> bool {
        self.views.iter().all(ViewRunReport::converged)
    }
}

struct ChaosSite {
    name: String,
    source_id: SourceId,
    source: Source,
    script: VecDeque<Update>,
    src_link: ChaosLink,
    wh_link: ChaosLink,
    /// Unique application messages, charged once at logical send — the
    /// meter whose totals match a fault-free in-memory run.
    logical: TransferMeter,
    /// Everything the wire actually carried, shared by every channel
    /// pair this site goes through across rewires.
    raw: TransferMeter,
    profile: ChaosProfile,
    /// Index into `profile.restarts` of the next restart still to fire.
    next_restart: usize,
    /// Unique effective update notifications sent (== `sent_history`
    /// length) — the coordinate system for durable watermarks.
    notifications_sent: u64,
    /// Re-sent copies after a warehouse crash; metered separately so
    /// `sent_history` indices keep their meaning.
    notifications_resent: u64,
    /// Every effective update ever notified, in send order. After a
    /// warehouse crash the tail past the recovered watermark is re-sent.
    sent_history: Vec<Update>,
    /// `notifications_sent` at the moment each outstanding answer was
    /// evaluated: the number of updates its snapshot subsumes.
    answer_watermarks: BTreeMap<QueryId, u64>,
}

struct ChaosViewInfo {
    site: usize,
    view: eca_core::ViewDef,
    source_states: Vec<eca_relational::SignedBag>,
    /// Rebuilds the maintainer after a warehouse crash (its initial `MV`
    /// is discarded by recovery). Views registered without a factory
    /// cannot survive a warehouse crash.
    factory: Option<Box<dyn Fn() -> Box<dyn ViewMaintainer>>>,
}

/// One warehouse over several sources, every channel faulty on purpose.
///
/// ```
/// use eca_core::{algorithms::AlgorithmKind, ViewDef};
/// use eca_relational::{Predicate, Schema, Tuple, Update};
/// use eca_sim::{ChaosProfile, ChaosSimulation, Policy};
/// use eca_source::Source;
/// use eca_storage::Scenario;
/// use eca_wire::FaultPlan;
///
/// let view = ViewDef::new(
///     "V",
///     vec![Schema::new("r1", &["W", "X"]), Schema::new("r2", &["X", "Y"])],
///     Predicate::col_eq(1, 2),
///     vec![0],
/// )?;
/// let mut source = Source::new(Scenario::Indexed);
/// source.add_relation(Schema::new("r1", &["W", "X"]), 20, None, &[])?;
/// source.add_relation(Schema::new("r2", &["X", "Y"]), 20, None, &[])?;
/// source.load("r1", [Tuple::ints([1, 2])])?;
/// let initial = view.eval(&source.snapshot())?;
/// let maintainer = AlgorithmKind::Eca.instantiate(&view, initial)?;
///
/// let mut sim = ChaosSimulation::new();
/// let site = sim.add_source_with(
///     "s1",
///     source,
///     vec![Update::insert("r2", Tuple::ints([2, 3]))],
///     ChaosProfile::symmetric(FaultPlan::mixed(7, 0.2)),
/// );
/// sim.add_view(site, maintainer)?;
/// let report = sim.run(Policy::Random { seed: 7 })?;
/// assert!(report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ChaosSimulation {
    warehouse: Warehouse,
    sites: Vec<ChaosSite>,
    views: Vec<ChaosViewInfo>,
    trace: Vec<(SiteId, TraceEvent)>,
    stats: ChaosStats,
    /// Durability config the warehouse runs under; also what a crashed
    /// warehouse recovers from. `None` → crashes recover via the §4
    /// amnesia fallback (full resync everywhere).
    durability: Option<DurabilityConfig>,
    /// Forwarded retry budget, replayed onto rebuilt warehouses.
    max_retries: Option<u32>,
    /// Recovery-stat totals absorbed from warehouses that crashed.
    recovery_base: eca_warehouse::RecoveryStats,
    recovery_time: std::time::Duration,
}

impl Default for ChaosSimulation {
    fn default() -> Self {
        ChaosSimulation::new()
    }
}

impl ChaosSimulation {
    /// An empty system: no sources, no views, no faults.
    pub fn new() -> Self {
        ChaosSimulation {
            warehouse: Warehouse::new(),
            sites: Vec::new(),
            views: Vec::new(),
            trace: Vec::new(),
            stats: ChaosStats::default(),
            durability: None,
            max_retries: None,
            recovery_base: eca_warehouse::RecoveryStats::default(),
            recovery_time: std::time::Duration::ZERO,
        }
    }

    /// Register a source with a transparent (fault-free) channel.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        source: Source,
        script: Vec<Update>,
    ) -> SiteId {
        self.add_source_with(name, source, script, ChaosProfile::none())
    }

    /// Register a source whose channel follows `profile`.
    pub fn add_source_with(
        &mut self,
        name: impl Into<String>,
        source: Source,
        script: Vec<Update>,
        profile: ChaosProfile,
    ) -> SiteId {
        let name = name.into();
        let source_id = self.warehouse.add_source(name.clone());
        let logical = TransferMeter::new();
        let raw = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(raw.clone());
        let src_link = ReliableLink::new(
            FaultyTransport::new(src_end, profile.s2w.clone()),
            logical.clone(),
        );
        let wh_link = ReliableLink::new(
            FaultyTransport::new(wh_end, profile.w2s.clone()),
            logical.clone(),
        );
        self.sites.push(ChaosSite {
            name,
            source_id,
            source,
            script: script.into(),
            src_link,
            wh_link,
            logical,
            raw,
            profile,
            next_restart: 0,
            notifications_sent: 0,
            notifications_resent: 0,
            sent_history: Vec::new(),
            answer_watermarks: BTreeMap::new(),
        });
        SiteId(self.sites.len() - 1)
    }

    /// Run the warehouse durably under `config`: every committed
    /// maintenance event is logged, checkpoints are cut at quiescent
    /// points, and scripted [`RestartSite::Warehouse`] crashes recover
    /// from disk instead of falling back to full resyncs.
    ///
    /// Call after every source is registered (the log is per-source);
    /// views registered later join the checkpoint at the next quiescent
    /// cut.
    ///
    /// # Errors
    /// Propagates I/O failures creating the durability directory or the
    /// initial logs.
    pub fn enable_durability(&mut self, config: DurabilityConfig) -> Result<(), SimError> {
        self.warehouse.enable_durability(config.clone())?;
        self.durability = Some(config);
        Ok(())
    }

    /// Host a view over `site`. The maintainer's initial `MV` must equal
    /// the view evaluated on the site's current state.
    ///
    /// # Errors
    /// Propagates view-evaluation failures on the initial snapshot.
    pub fn add_view(
        &mut self,
        site: SiteId,
        maintainer: Box<dyn ViewMaintainer>,
    ) -> Result<ViewId, SimError> {
        self.install_view(site, maintainer, None)
    }

    /// Host a view built by `factory`, keeping the factory so the view
    /// can be re-instantiated after a scripted warehouse crash. Required
    /// for every view when the run schedules
    /// [`RestartSite::Warehouse`] events.
    ///
    /// # Errors
    /// Propagates view-evaluation failures on the initial snapshot.
    pub fn add_view_with_factory(
        &mut self,
        site: SiteId,
        factory: impl Fn() -> Box<dyn ViewMaintainer> + 'static,
    ) -> Result<ViewId, SimError> {
        let maintainer = factory();
        self.install_view(site, maintainer, Some(Box::new(factory)))
    }

    fn install_view(
        &mut self,
        site: SiteId,
        maintainer: Box<dyn ViewMaintainer>,
        factory: Option<Box<dyn Fn() -> Box<dyn ViewMaintainer>>>,
    ) -> Result<ViewId, SimError> {
        let view = maintainer.view().clone();
        let initial = view.eval(&self.sites[site.0].source.snapshot())?;
        let id = self
            .warehouse
            .add_view(self.sites[site.0].source_id, maintainer)?;
        self.views.push(ChaosViewInfo {
            site: site.0,
            view,
            source_states: vec![initial],
            factory,
        });
        Ok(id)
    }

    /// Re-issue attempts per query before a view degrades to a resync
    /// (forwarded to [`Warehouse::set_max_retries`]).
    pub fn set_max_retries(&mut self, n: u32) {
        self.max_retries = Some(n);
        self.warehouse.set_max_retries(n);
    }

    /// Run to quiescence under `policy` and report.
    ///
    /// # Errors
    /// Propagates warehouse, source, transport and codec errors; a run
    /// that cannot settle within the step cap reports
    /// [`SimError::Protocol`] (livelock).
    pub fn run(mut self, policy: Policy) -> Result<ChaosRunReport, SimError> {
        let mut steps = 0u64;
        match policy {
            Policy::Serial => {
                while self.sites.iter().any(|s| !s.script.is_empty()) {
                    for i in 0..self.sites.len() {
                        if !self.sites[i].script.is_empty() {
                            self.step_source_update(i)?;
                            self.settle(&mut steps)?;
                        }
                    }
                }
                self.settle(&mut steps)?;
            }
            Policy::AllUpdatesFirst => {
                for i in 0..self.sites.len() {
                    while !self.sites[i].script.is_empty() {
                        self.step_source_update(i)?;
                    }
                }
                self.settle(&mut steps)?;
            }
            Policy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    steps += 1;
                    if steps > STEP_CAP {
                        return Err(SimError::Protocol(
                            "chaos scheduler exceeded its step cap (livelock)",
                        ));
                    }
                    self.fire_due_restarts(steps)?;
                    self.heal_failures()?;
                    // Identical enabled-event vocabulary and push order
                    // to `MultiSimulation::run`, so a fault-free run
                    // takes exactly the same RNG draws.
                    let mut enabled: Vec<(usize, u8)> = Vec::new();
                    for i in 0..self.sites.len() {
                        if !self.sites[i].script.is_empty() {
                            enabled.push((i, 0));
                        }
                        if self.sites[i].src_link.has_inbound() {
                            enabled.push((i, 1));
                        }
                        if self.sites[i].wh_link.has_inbound() {
                            enabled.push((i, 2));
                        }
                    }
                    if enabled.is_empty() {
                        // Nothing for the application to do; if the
                        // session layer is still in flight, keep ticking
                        // (no RNG draw) so retransmissions fire.
                        if self.all_settled() {
                            break;
                        }
                        continue;
                    }
                    let (site, ev) = enabled[rng.gen_range(0..enabled.len())];
                    match ev {
                        0 => self.step_source_update(site)?,
                        1 => self.step_source_answer(site)?,
                        _ => self.step_warehouse_deliver(site)?,
                    }
                }
            }
        }
        self.stats.steps = steps;
        Ok(self.into_report())
    }

    /// Tick, deliver and heal until every link settles and every app
    /// message is consumed — the fault-aware analogue of
    /// `MultiSimulation::drain_all`.
    fn settle(&mut self, steps: &mut u64) -> Result<(), SimError> {
        loop {
            *steps += 1;
            if *steps > STEP_CAP {
                return Err(SimError::Protocol(
                    "chaos scheduler exceeded its step cap (livelock)",
                ));
            }
            self.fire_due_restarts(*steps)?;
            self.heal_failures()?;
            let mut progressed = false;
            for i in 0..self.sites.len() {
                while self.sites[i].wh_link.has_inbound() {
                    self.step_warehouse_deliver(i)?;
                    progressed = true;
                }
                while self.sites[i].src_link.has_inbound() {
                    self.step_source_answer(i)?;
                    progressed = true;
                }
            }
            if !progressed && self.all_settled() {
                return Ok(());
            }
        }
    }

    /// Whether every channel is fully drained: no app message waiting
    /// and no frame unacked or buffered out of order. Messages still
    /// held back by a delay fault are deliberately *not* waited for:
    /// they only release on a later send of the same endpoint, and once
    /// both links are settled every seq has been acked and delivered, so
    /// a held copy can only be a redundant duplicate or ack.
    /// (`has_inbound` doubles as the clock tick.)
    fn all_settled(&mut self) -> bool {
        self.sites.iter_mut().all(|s| {
            !s.src_link.has_inbound()
                && !s.wh_link.has_inbound()
                && s.src_link.is_settled()
                && s.wh_link.is_settled()
        })
    }

    /// Fire every scripted restart that has come due at `step`. Runs
    /// outside any RNG draw, so adding restart events never perturbs a
    /// seeded schedule's draw sequence.
    fn fire_due_restarts(&mut self, step: u64) -> Result<(), SimError> {
        for i in 0..self.sites.len() {
            while let Some(due) = self.sites[i]
                .profile
                .restarts
                .get(self.sites[i].next_restart)
                .copied()
                .filter(|r| r.at <= step)
            {
                self.sites[i].next_restart += 1;
                match due.site {
                    RestartSite::Source => self.rewire(i, true)?,
                    RestartSite::Warehouse => self.crash_warehouse()?,
                }
            }
        }
        Ok(())
    }

    /// Kill the warehouse process and bring it back. The old instance —
    /// sessions, view state, unsynced log buffers — is dropped on the
    /// floor; a replacement is rebuilt from the registered factories and
    /// recovered from disk ([`Warehouse::recover_durability`]) or, when
    /// the run is not durable, reset into the paper's §4 amnesia
    /// fallback: every view degrades and resyncs from a fresh `V(ss)`.
    /// Every site's channel is torn down with it; sources then re-send
    /// the notification tail past each recovered watermark so
    /// incrementally recovered views converge without a full resync.
    fn crash_warehouse(&mut self) -> Result<(), SimError> {
        self.stats.warehouse_restarts += 1;
        let dying = self.warehouse.recovery_stats();
        self.recovery_base.reissued += dying.reissued;
        self.recovery_base.resyncs_started += dying.resyncs_started;
        self.recovery_base.resyncs_completed += dying.resyncs_completed;
        // Rebuild the deployment shape. Factories are mandatory: a
        // recovered maintainer's state comes from disk (or a resync),
        // never from the dead instance.
        let mut fresh = Warehouse::new();
        if let Some(n) = self.max_retries {
            fresh.set_max_retries(n);
        }
        for s in &self.sites {
            let _ = fresh.add_source(s.name.clone());
        }
        for info in &self.views {
            let Some(factory) = &info.factory else {
                return Err(SimError::Protocol(
                    "warehouse crash scheduled but a view was registered without a factory \
                     (use add_view_with_factory)",
                ));
            };
            fresh.add_view(self.sites[info.site].source_id, factory())?;
        }
        // The crash: dropping the old warehouse loses exactly what a
        // real process loses — everything not on disk.
        self.warehouse = fresh;
        let started = std::time::Instant::now();
        // (site index, incremental?, durable watermark, outbound queries)
        let outcomes: Vec<(usize, bool, u64, Vec<Message>)> =
            if let Some(config) = self.durability.clone() {
                self.warehouse
                    .recover_durability(config)?
                    .into_iter()
                    .map(|o| match o {
                        RecoveryOutcome::Incremental {
                            source,
                            replayed,
                            notifications_seen,
                            messages,
                        } => {
                            self.stats.recovered_incremental += 1;
                            self.stats.wal_replayed += replayed;
                            (source.0, true, notifications_seen, messages)
                        }
                        RecoveryOutcome::Full { source, messages } => {
                            self.stats.recovered_full += 1;
                            (source.0, false, 0, messages)
                        }
                    })
                    .collect()
            } else {
                let mut outcomes = Vec::with_capacity(self.sites.len());
                for i in 0..self.sites.len() {
                    let source_id = self.sites[i].source_id;
                    let messages = self.warehouse.on_reset(source_id, true)?;
                    self.stats.recovered_full += 1;
                    outcomes.push((i, false, 0, messages));
                }
                outcomes
            };
        self.recovery_time += started.elapsed();
        for (i, incremental, watermark, messages) in outcomes {
            self.absorb_injections(i);
            // Answers in flight died with the channel; their watermark
            // notes will never be consumed.
            self.sites[i].answer_watermarks.clear();
            let (src_t, wh_t) = {
                let s = &mut self.sites[i];
                let (src_end, wh_end) = InMemoryFifo::pair(s.raw.clone());
                let src_t = FaultyTransport::with_origin(
                    src_end,
                    s.profile.s2w.clone(),
                    s.src_link.inner_mut().next_seq(),
                );
                let wh_t = FaultyTransport::with_origin(
                    wh_end,
                    s.profile.w2s.clone(),
                    s.wh_link.inner_mut().next_seq(),
                );
                (src_t, wh_t)
            };
            // Recovery already bumped the session epoch; both ends come
            // up on it directly.
            let epoch = self.warehouse.epoch(self.sites[i].source_id);
            self.sites[i].src_link.restart(src_t, epoch);
            self.sites[i].wh_link.restart(wh_t, epoch);
            // The crashed process's undelivered inbox dies with it: a
            // notification the link had sequenced but the warehouse never
            // consumed is below no watermark, so the tail re-send below
            // covers it — keeping it here would apply it twice.
            self.sites[i].wh_link.clear_ready();
            self.sites[i].wh_link.set_epoch(epoch);
            for msg in messages {
                self.sites[i].wh_link.send(&msg)?;
            }
            // Incremental recovery: re-send exactly the updates past the
            // durable watermark. FIFO ordering puts them ahead of any
            // answer to the re-issued queries, so compensation stays
            // sound. A full resync needs no tail — `V(ss)` subsumes it.
            if incremental {
                let tail: Vec<Update> = self.sites[i].sent_history[watermark as usize..].to_vec();
                for update in tail {
                    self.sites[i]
                        .src_link
                        .send(&Message::UpdateNotification { update })?;
                    self.sites[i].notifications_resent += 1;
                    self.stats.resync_notifications += 1;
                }
            }
        }
        Ok(())
    }

    /// Detect dead connections (scripted resets, wedged links) and
    /// rewire them.
    fn heal_failures(&mut self) -> Result<(), SimError> {
        for i in 0..self.sites.len() {
            let dead = {
                let s = &mut self.sites[i];
                s.src_link.inner_mut().take_reset()
                    | s.wh_link.inner_mut().take_reset()
                    | s.src_link.wedged()
                    | s.wh_link.wedged()
            };
            if dead {
                self.rewire(i, false)?;
            }
        }
        Ok(())
    }

    /// Absorb a dying transport pair's injection log into the stats and
    /// replace the channel. `restart` distinguishes a source crash (both
    /// session states lost, notifications possibly gone → every view
    /// resyncs) from a connection failure (session state survives →
    /// lossless [`ReliableLink::reconnect`], pending queries re-issued).
    fn rewire(&mut self, i: usize, restart: bool) -> Result<(), SimError> {
        self.absorb_injections(i);
        let (source_id, src_t, wh_t) = {
            let s = &mut self.sites[i];
            // Fresh pair on the same raw meter; fault sequence numbers
            // continue from where the dead pair stopped so scripted
            // points keep their meaning and fired resets never re-fire.
            let (src_end, wh_end) = InMemoryFifo::pair(s.raw.clone());
            let src_t = FaultyTransport::with_origin(
                src_end,
                s.profile.s2w.clone(),
                s.src_link.inner_mut().next_seq(),
            );
            let wh_t = FaultyTransport::with_origin(
                wh_end,
                s.profile.w2s.clone(),
                s.wh_link.inner_mut().next_seq(),
            );
            (s.source_id, src_t, wh_t)
        };
        if restart {
            let epoch = self.warehouse.epoch(source_id) + 1;
            self.sites[i].src_link.restart(src_t, epoch);
            self.sites[i].wh_link.restart(wh_t, epoch);
            self.stats.restarts += 1;
        } else {
            self.sites[i].src_link.reconnect(src_t);
            self.sites[i].wh_link.reconnect(wh_t);
            self.stats.resets += 1;
        }
        let queries = self.warehouse.on_reset(source_id, restart)?;
        let epoch = self.warehouse.epoch(source_id);
        self.sites[i].wh_link.set_epoch(epoch);
        for msg in queries {
            self.sites[i].wh_link.send(&msg)?;
        }
        Ok(())
    }

    /// Drain the injection log of site `i`'s current transports into the
    /// stats (called before discarding a pair, and once at the end).
    fn absorb_injections(&mut self, i: usize) {
        let s = &mut self.sites[i];
        for log in [
            s.src_link.inner_mut().take_log(),
            s.wh_link.inner_mut().take_log(),
        ] {
            for ev in log {
                match ev.kind {
                    FaultKind::Drop => self.stats.drops += 1,
                    FaultKind::Duplicate => self.stats.duplicates += 1,
                    FaultKind::Delay(_) => self.stats.delays += 1,
                    FaultKind::Corrupt => self.stats.corrupts += 1,
                    // Counted when healed, not when injected.
                    FaultKind::Reset => {}
                }
            }
        }
    }

    /// `S_up` at site `i`.
    fn step_source_update(&mut self, i: usize) -> Result<(), SimError> {
        let Some(update) = self.sites[i].script.pop_front() else {
            return Err(SimError::Protocol("S_up fired with an empty script"));
        };
        let effective = self.sites[i].source.execute_update(&update);
        self.trace.push((
            SiteId(i),
            TraceEvent::SourceUpdate {
                update: update.clone(),
                effective,
            },
        ));
        if effective {
            let snapshot = self.sites[i].source.snapshot();
            for info in self.views.iter_mut().filter(|v| v.site == i) {
                info.source_states.push(info.view.eval(&snapshot)?);
            }
            self.sites[i].src_link.send(&Message::UpdateNotification {
                update: update.clone(),
            })?;
            self.sites[i].notifications_sent += 1;
            self.sites[i].sent_history.push(update);
        }
        Ok(())
    }

    /// `S_qu` at site `i`: the source evaluates a query on its *current*
    /// state. The link has already de-duplicated and re-ordered, so every
    /// query arrives here exactly once — including re-issued and resync
    /// queries, which are new messages under fresh ids.
    fn step_source_answer(&mut self, i: usize) -> Result<(), SimError> {
        let site = &mut self.sites[i];
        let Some(Message::QueryRequest { id, query }) = site.src_link.try_recv()? else {
            return Err(SimError::Protocol(
                "S_qu fired without a QueryRequest pending",
            ));
        };
        let answer = site.source.answer(&query)?;
        self.trace.push((
            SiteId(i),
            TraceEvent::SourceAnswer {
                id,
                tuples: answer.pos_len() + answer.neg_len(),
            },
        ));
        site.logical.record_answer_payload(
            answer.encoded_len() as u64,
            answer.pos_len() + answer.neg_len(),
        );
        // Remember how many updates this evaluation's snapshot subsumed:
        // if the answer completes a resync, the warehouse's durable
        // watermark advances to exactly this point.
        let watermark = site.notifications_sent;
        site.answer_watermarks.insert(id, watermark);
        site.src_link.send(&Message::QueryAnswer { id, answer })?;
        Ok(())
    }

    /// `W_up`/`W_ans` for site `i`'s channel. Answers addressed to a
    /// retired (stale-epoch) id are rejected by the session's strict
    /// demux before touching any maintainer; the harness counts and
    /// drops them.
    fn step_warehouse_deliver(&mut self, i: usize) -> Result<(), SimError> {
        let source_id = self.sites[i].source_id;
        let Some(msg) = self.sites[i].wh_link.try_recv()? else {
            return Err(SimError::Protocol(
                "warehouse delivery fired with an empty channel",
            ));
        };
        let outbound = match msg {
            Message::UpdateNotification { update } => {
                let queries = self.warehouse.on_update(source_id, &update)?;
                self.trace.push((
                    SiteId(i),
                    TraceEvent::WarehouseUpdate {
                        update,
                        queries_sent: queries.iter().map(|q| q.id).collect(),
                    },
                ));
                queries
            }
            Message::QueryAnswer { id, answer } => {
                let before = self.warehouse.recovery_stats().resyncs_completed;
                match self.warehouse.on_answer(source_id, id, answer) {
                    Ok(queries) => {
                        self.trace
                            .push((SiteId(i), TraceEvent::WarehouseAnswer { id }));
                        // A completed resync subsumes every notification
                        // the answering snapshot had seen — advance the
                        // durable watermark so a later crash does not
                        // re-send (and double-apply) them.
                        if self.warehouse.recovery_stats().resyncs_completed > before {
                            if let Some(watermark) = self.sites[i].answer_watermarks.remove(&id) {
                                self.warehouse.note_source_watermark(source_id, watermark)?;
                            }
                        } else {
                            self.sites[i].answer_watermarks.remove(&id);
                        }
                        queries
                    }
                    Err(WarehouseError::Core(CoreError::UnknownQuery { .. })) => {
                        self.stats.stale_answers += 1;
                        self.sites[i].answer_watermarks.remove(&id);
                        Vec::new()
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Message::QueryRequest { .. } => {
                return Err(SimError::Protocol("s2w never carries QueryRequest"));
            }
            Message::Frame { .. } | Message::Ack { .. } | Message::Hello { .. } => {
                return Err(SimError::Protocol(
                    "session-layer envelope leaked past the reliable link",
                ));
            }
            Message::ReadQuery { .. } | Message::ReadAnswer { .. } | Message::ReadError { .. } => {
                return Err(SimError::Protocol(
                    "read-serving message on a maintenance channel",
                ));
            }
        };
        for q in outbound {
            self.sites[i].wh_link.send(&Message::QueryRequest {
                id: q.id,
                query: WireQuery::from_query(&q.query),
            })?;
        }
        Ok(())
    }

    fn into_report(mut self) -> ChaosRunReport {
        for i in 0..self.sites.len() {
            self.absorb_injections(i);
        }
        // Cumulative over every warehouse incarnation: the live
        // instance's counters plus everything absorbed at crash time.
        let recovery = self.warehouse.recovery_stats();
        self.stats.reissued = self.recovery_base.reissued + recovery.reissued;
        self.stats.resyncs_started = self.recovery_base.resyncs_started + recovery.resyncs_started;
        self.stats.resyncs_completed =
            self.recovery_base.resyncs_completed + recovery.resyncs_completed;
        for s in &self.sites {
            let src = s.src_link.stats();
            let wh = s.wh_link.stats();
            self.stats.retransmits += src.retransmits + wh.retransmits;
            self.stats.duplicates_dropped += src.duplicates_dropped + wh.duplicates_dropped;
            self.stats.corrupt_dropped += src.corrupt_dropped + wh.corrupt_dropped;
        }
        let quiescent = self.warehouse.is_quiescent();
        let views = self
            .views
            .iter()
            .enumerate()
            .map(|(idx, info)| {
                let id = ViewId(idx);
                ViewRunReport {
                    view_name: info.view.name().to_string(),
                    site: SiteId(info.site),
                    algorithm: self.warehouse.maintainer(id).algorithm(),
                    source_view_states: info.source_states.clone(),
                    warehouse_view_states: self.warehouse.view_states(id).to_vec(),
                    final_mv: self.warehouse.materialized(id).clone(),
                    final_source_view: info.source_states.last().cloned().unwrap_or_default(),
                }
            })
            .collect();
        let sites = self
            .sites
            .iter()
            .map(|s| SiteReport {
                name: s.name.clone(),
                query_messages: s.logical.messages_w2s(),
                answer_messages: s.logical.messages_s2w()
                    - s.notifications_sent
                    - s.notifications_resent,
                notification_messages: s.notifications_sent + s.notifications_resent,
                answer_bytes: s.logical.answer_bytes(),
                answer_tuples: s.logical.answer_tuples(),
                bytes_s2w: s.logical.bytes_s2w(),
                bytes_w2s: s.logical.bytes_w2s(),
            })
            .collect();
        let overhead = self
            .sites
            .iter()
            .map(|s| LinkOverhead {
                raw_bytes: s.raw.bytes_s2w() + s.raw.bytes_w2s(),
                logical_bytes: s.logical.bytes_s2w() + s.logical.bytes_w2s(),
                raw_messages: s.raw.messages_s2w() + s.raw.messages_w2s(),
                logical_messages: s.logical.messages_s2w() + s.logical.messages_w2s(),
            })
            .collect();
        ChaosRunReport {
            views,
            sites,
            overhead,
            quiescent,
            stats: self.stats,
            recovery_time: self.recovery_time,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiSimulation;
    use eca_core::algorithms::AlgorithmKind;
    use eca_core::ViewDef;
    use eca_relational::{Predicate, Schema, Tuple};
    use eca_storage::Scenario;

    fn site_a() -> (Source, ViewDef, Vec<Update>) {
        let view = ViewDef::new(
            "V1",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let mut source = Source::new(Scenario::Indexed);
        source
            .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
            .unwrap();
        source
            .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
            .unwrap();
        source.load("r1", [Tuple::ints([1, 2])]).unwrap();
        let script = vec![
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::delete("r2", Tuple::ints([2, 3])),
            Update::insert("r2", Tuple::ints([2, 7])),
        ];
        (source, view, script)
    }

    fn site_b() -> (Source, ViewDef, Vec<Update>) {
        let view = ViewDef::new(
            "V2",
            vec![
                Schema::new("r3", &["A", "B"]),
                Schema::new("r4", &["B", "C"]),
            ],
            Predicate::col_eq(1, 2),
            vec![1],
        )
        .unwrap();
        let mut source = Source::new(Scenario::Indexed);
        source
            .add_relation(Schema::new("r3", &["A", "B"]), 20, Some("B"), &[])
            .unwrap();
        source
            .add_relation(Schema::new("r4", &["B", "C"]), 20, Some("B"), &[])
            .unwrap();
        source.load("r4", [Tuple::ints([5, 6])]).unwrap();
        let script = vec![
            Update::insert("r3", Tuple::ints([9, 5])),
            Update::delete("r4", Tuple::ints([5, 6])),
            Update::insert("r4", Tuple::ints([5, 8])),
        ];
        (source, view, script)
    }

    fn build_chaos(kind: AlgorithmKind, profiles: [ChaosProfile; 2]) -> ChaosSimulation {
        let mut sim = ChaosSimulation::new();
        let fixtures = [("a", site_a()), ("b", site_b())];
        for ((name, (source, view, script)), profile) in fixtures.into_iter().zip(profiles) {
            let snapshot = source.snapshot();
            let initial = view.eval(&snapshot).unwrap();
            let maintainer = kind
                .instantiate_with_base(&view, initial, Some(snapshot))
                .unwrap();
            let site = sim.add_source_with(name, source, script, profile);
            sim.add_view(site, maintainer).unwrap();
        }
        sim
    }

    fn build_multi(kind: AlgorithmKind) -> MultiSimulation {
        let mut sim = MultiSimulation::new();
        for (name, (source, view, script)) in [("a", site_a()), ("b", site_b())] {
            let snapshot = source.snapshot();
            let initial = view.eval(&snapshot).unwrap();
            let maintainer = kind
                .instantiate_with_base(&view, initial, Some(snapshot))
                .unwrap();
            let site = sim.add_source(name, source, script);
            sim.add_view(site, maintainer).unwrap();
        }
        sim
    }

    /// The acceptance bar for the session layer's transparency: with no
    /// faults, the chaos stack takes the same scheduling decisions and
    /// charges the same logical meters as the plain in-memory run.
    #[test]
    fn fault_free_run_matches_plain_multi_simulation_exactly() {
        for policy in [
            Policy::Serial,
            Policy::AllUpdatesFirst,
            Policy::Random { seed: 11 },
            Policy::Random { seed: 42 },
        ] {
            let plain = build_multi(AlgorithmKind::Eca).run(policy).unwrap();
            let chaos = build_chaos(
                AlgorithmKind::Eca,
                [ChaosProfile::none(), ChaosProfile::none()],
            )
            .run(policy)
            .unwrap();
            assert!(chaos.quiescent && chaos.converged(), "{policy:?}");
            for (p, c) in plain.sites.iter().zip(&chaos.sites) {
                assert_eq!(p.query_messages, c.query_messages, "{policy:?} {}", p.name);
                assert_eq!(p.answer_messages, c.answer_messages, "{policy:?}");
                assert_eq!(p.notification_messages, c.notification_messages);
                assert_eq!(p.answer_bytes, c.answer_bytes, "{policy:?}");
                assert_eq!(p.bytes_s2w, c.bytes_s2w, "{policy:?}");
                assert_eq!(p.bytes_w2s, c.bytes_w2s, "{policy:?}");
            }
            for (p, c) in plain.views.iter().zip(&chaos.views) {
                assert_eq!(p.final_mv, c.final_mv, "{policy:?}");
            }
            let s = chaos.stats;
            assert_eq!(
                (s.drops, s.duplicates, s.retransmits, s.resets, s.restarts),
                (0, 0, 0, 0, 0),
                "{policy:?}"
            );
            // The wire still paid for frames and acks.
            for o in &chaos.overhead {
                assert!(o.raw_bytes > o.logical_bytes);
            }
        }
    }

    #[test]
    fn mixed_faults_heal_transparently_and_converge() {
        for seed in [3, 19, 77] {
            let profiles = [
                ChaosProfile::symmetric(FaultPlan::mixed(seed, 0.15)),
                ChaosProfile::symmetric(FaultPlan::mixed(seed ^ 0xff, 0.15)),
            ];
            let report = build_chaos(AlgorithmKind::Eca, profiles)
                .run(Policy::Random { seed })
                .unwrap();
            assert!(report.converged(), "seed {seed}");
            assert!(report.quiescent, "seed {seed}");
            let s = report.stats;
            assert!(
                s.drops + s.duplicates + s.delays + s.corrupts > 0,
                "seed {seed}: plan must actually inject"
            );
        }
    }

    #[test]
    fn faulty_run_matches_fault_free_golden_views() {
        let golden = build_chaos(
            AlgorithmKind::Eca,
            [ChaosProfile::none(), ChaosProfile::none()],
        )
        .run(Policy::Serial)
        .unwrap();
        let noisy = build_chaos(
            AlgorithmKind::Eca,
            [
                ChaosProfile::symmetric(FaultPlan::drops(5, 0.3)),
                ChaosProfile::symmetric(FaultPlan::duplicates(6, 0.3)),
            ],
        )
        .run(Policy::Serial)
        .unwrap();
        for (g, n) in golden.views.iter().zip(&noisy.views) {
            assert_eq!(g.final_mv, n.final_mv);
        }
        assert!(noisy.stats.retransmits > 0 || noisy.stats.duplicates_dropped > 0);
    }

    #[test]
    fn connection_reset_triggers_reissue_and_converges() {
        // Kill the warehouse→source direction early: a query frame (or
        // its ack traffic) dies with the connection, the link reports the
        // reset, and the warehouse re-issues under a new epoch.
        let profiles = [
            ChaosProfile {
                s2w: FaultPlan::none(),
                w2s: FaultPlan::none().with_resets(&[2]),
                restarts: vec![],
            },
            ChaosProfile::none(),
        ];
        let report = build_chaos(AlgorithmKind::Eca, profiles)
            .run(Policy::Random { seed: 9 })
            .unwrap();
        assert!(report.converged());
        assert!(report.stats.resets >= 1);
        assert!(report.stats.reissued >= 1, "{:?}", report.stats);
    }

    #[test]
    fn scripted_restart_forces_resync_and_converges() {
        let profiles = [
            ChaosProfile::none().with_restarts(&[12]),
            ChaosProfile::none(),
        ];
        let report = build_chaos(AlgorithmKind::Eca, profiles)
            .run(Policy::Random { seed: 21 })
            .unwrap();
        assert!(report.converged());
        assert_eq!(report.stats.restarts, 1);
        assert!(report.stats.resyncs_started >= 1);
        assert_eq!(
            report.stats.resyncs_completed, report.stats.resyncs_started,
            "every started resync must complete"
        );
        assert!(report.quiescent);
    }

    #[test]
    fn basic_algorithm_recovers_via_resync_under_serial_faults() {
        // Basic is not compensation-safe (`reissue_safe` = false): any
        // pending query at reset time degrades its view straight to a
        // resync — and the run still converges.
        let profiles = [
            ChaosProfile {
                s2w: FaultPlan::none(),
                w2s: FaultPlan::none().with_resets(&[1]),
                restarts: vec![],
            },
            ChaosProfile::none(),
        ];
        let report = build_chaos(AlgorithmKind::Basic, profiles)
            .run(Policy::Serial)
            .unwrap();
        assert!(report.converged());
        assert!(report.quiescent);
    }

    fn build_chaos_with_factories(
        kind: AlgorithmKind,
        profiles: [ChaosProfile; 2],
    ) -> ChaosSimulation {
        let mut sim = ChaosSimulation::new();
        let fixtures = [("a", site_a()), ("b", site_b())];
        for ((name, (source, view, script)), profile) in fixtures.into_iter().zip(profiles) {
            let snapshot = source.snapshot();
            let site = sim.add_source_with(name, source, script, profile);
            sim.add_view_with_factory(site, move || {
                let initial = view.eval(&snapshot).unwrap();
                kind.instantiate_with_base(&view, initial, Some(snapshot.clone()))
                    .unwrap()
            })
            .unwrap();
        }
        sim
    }

    fn sim_tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eca-sim-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn warehouse_crash_without_durability_falls_back_to_full_resyncs() {
        let profiles = [
            ChaosProfile::none().with_warehouse_crashes(&[9]),
            ChaosProfile::none(),
        ];
        let report = build_chaos_with_factories(AlgorithmKind::Eca, profiles)
            .run(Policy::Random { seed: 17 })
            .unwrap();
        assert!(report.converged());
        assert!(report.quiescent);
        assert_eq!(report.stats.warehouse_restarts, 1);
        assert_eq!(report.stats.recovered_incremental, 0);
        assert_eq!(
            report.stats.recovered_full, 2,
            "amnesia fallback resets every source channel"
        );
        assert!(report.stats.resyncs_completed >= 2);
        assert_eq!(report.stats.resync_notifications, 0);
    }

    #[test]
    fn warehouse_crash_with_durability_recovers_and_converges() {
        let dir = sim_tmpdir("crash-recovers");
        let profiles = [
            ChaosProfile::none().with_warehouse_crashes(&[9]),
            ChaosProfile::none(),
        ];
        let mut sim = build_chaos_with_factories(AlgorithmKind::Eca, profiles);
        sim.enable_durability(DurabilityConfig::new(&dir)).unwrap();
        let report = sim.run(Policy::Random { seed: 17 }).unwrap();
        assert!(report.converged());
        assert!(report.quiescent);
        assert_eq!(report.stats.warehouse_restarts, 1);
        assert_eq!(
            report.stats.recovered_incremental, 2,
            "with a baseline checkpoint and an intact log every channel \
             recovers incrementally: {:?}",
            report.stats
        );
        assert_eq!(report.stats.recovered_full, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_fault_free_run_matches_plain_chaos_exactly() {
        let dir = sim_tmpdir("fault-free-identity");
        for policy in [Policy::Serial, Policy::Random { seed: 42 }] {
            let plain = build_chaos(
                AlgorithmKind::Eca,
                [ChaosProfile::none(), ChaosProfile::none()],
            )
            .run(policy)
            .unwrap();
            let mut durable = build_chaos(
                AlgorithmKind::Eca,
                [ChaosProfile::none(), ChaosProfile::none()],
            );
            let _ = std::fs::remove_dir_all(&dir);
            durable
                .enable_durability(DurabilityConfig::new(&dir))
                .unwrap();
            let durable = durable.run(policy).unwrap();
            assert_eq!(plain.stats, durable.stats, "{policy:?}");
            for (p, c) in plain.sites.iter().zip(&durable.sites) {
                assert_eq!(p.query_messages, c.query_messages, "{policy:?}");
                assert_eq!(p.answer_messages, c.answer_messages, "{policy:?}");
                assert_eq!(p.notification_messages, c.notification_messages);
                assert_eq!(p.bytes_s2w, c.bytes_s2w, "{policy:?}");
                assert_eq!(p.bytes_w2s, c.bytes_w2s, "{policy:?}");
            }
            for (p, c) in plain.views.iter().zip(&durable.views) {
                assert_eq!(p.final_mv, c.final_mv, "{policy:?}");
                assert_eq!(
                    p.warehouse_view_states, c.warehouse_view_states,
                    "{policy:?}: durability must not change the state history"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_runs_are_reproducible_per_seed() {
        let run = || {
            build_chaos(
                AlgorithmKind::Eca,
                [
                    ChaosProfile::symmetric(FaultPlan::mixed(4, 0.2)),
                    ChaosProfile::symmetric(FaultPlan::mixed(5, 0.2)),
                ],
            )
            .run(Policy::Random { seed: 33 })
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.bytes_s2w, y.bytes_s2w);
            assert_eq!(x.bytes_w2s, y.bytes_w2s);
        }
    }
}
