//! Structured event traces of a simulation run.

use eca_core::QueryId;
use eca_relational::Update;

/// One event in the recorded history, mirroring the paper's §3 event
/// types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `S_up`: the source executed an update.
    SourceUpdate {
        /// The update.
        update: Update,
        /// Whether it changed the base data (deletes of absent tuples do
        /// not, and are not notified).
        effective: bool,
    },
    /// `W_up`: the warehouse processed an update notification.
    WarehouseUpdate {
        /// The update.
        update: Update,
        /// Ids of queries the algorithm emitted in response.
        queries_sent: Vec<QueryId>,
    },
    /// `S_qu`: the source evaluated a query.
    SourceAnswer {
        /// The query id.
        id: QueryId,
        /// Number of tuple occurrences in the answer.
        tuples: u64,
    },
    /// `W_ans`: the warehouse processed an answer.
    WarehouseAnswer {
        /// The query id.
        id: QueryId,
    },
}

impl TraceEvent {
    /// The paper's event-type label.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SourceUpdate { .. } => "S_up",
            TraceEvent::WarehouseUpdate { .. } => "W_up",
            TraceEvent::SourceAnswer { .. } => "S_qu",
            TraceEvent::WarehouseAnswer { .. } => "W_ans",
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::SourceUpdate { update, effective } => {
                write!(
                    f,
                    "S_up  {update:?}{}",
                    if *effective { "" } else { " (no-op)" }
                )
            }
            TraceEvent::WarehouseUpdate {
                update,
                queries_sent,
            } => {
                write!(f, "W_up  {update:?} -> sends {queries_sent:?}")
            }
            TraceEvent::SourceAnswer { id, tuples } => {
                write!(f, "S_qu  {id} answered with {tuples} tuple(s)")
            }
            TraceEvent::WarehouseAnswer { id } => write!(f, "W_ans {id} applied"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;

    #[test]
    fn kinds_and_display() {
        let e = TraceEvent::SourceUpdate {
            update: Update::insert("r1", Tuple::ints([1])),
            effective: true,
        };
        assert_eq!(e.kind(), "S_up");
        assert!(e.to_string().contains("insert"));

        let w = TraceEvent::WarehouseAnswer { id: QueryId(2) };
        assert_eq!(w.kind(), "W_ans");
        assert!(w.to_string().contains("Q2"));
    }
}
