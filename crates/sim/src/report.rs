//! Run reports: recorded histories plus cost meters.

use eca_core::maintainer::SelfMaintStats;
use eca_relational::SignedBag;

use crate::trace::TraceEvent;

/// Everything observed during one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The warehouse algorithm's label.
    pub algorithm: &'static str,
    /// `V[ss_0], V[ss_1], …, V[ss_p]` — the view evaluated at the source
    /// after the initial state and each effective update.
    pub source_view_states: Vec<SignedBag>,
    /// `MV` after the initial state and each warehouse event.
    pub warehouse_view_states: Vec<SignedBag>,
    /// The final materialized view.
    pub final_mv: SignedBag,
    /// The final source view state `V[ss_p]`.
    pub final_source_view: SignedBag,
    /// Whether the algorithm reports no outstanding work.
    pub quiescent: bool,
    /// Query messages sent warehouse → source.
    pub query_messages: u64,
    /// Answer messages sent source → warehouse.
    pub answer_messages: u64,
    /// Update notifications sent source → warehouse (identical across
    /// algorithms; excluded from the paper's `M`).
    pub notification_messages: u64,
    /// Answer payload bytes — the measured counterpart of the paper's `B`.
    pub answer_bytes: u64,
    /// Answer payload tuple occurrences (for `B = S × tuples` analytic
    /// comparison).
    pub answer_tuples: u64,
    /// Total bytes source → warehouse (including notifications).
    pub bytes_s2w: u64,
    /// Total bytes warehouse → source (queries).
    pub bytes_w2s: u64,
    /// Source block reads charged to query evaluation — the paper's `IO`.
    pub io_reads: u64,
    /// Self-maintenance statistics (local-answer counts and auxiliary
    /// residency), when the algorithm keeps auxiliary views.
    pub selfmaint: Option<SelfMaintStats>,
    /// The full event trace.
    pub trace: Vec<TraceEvent>,
}

impl RunReport {
    /// The paper's `M`: queries plus answers, excluding notifications
    /// (§6.1).
    pub fn maintenance_messages(&self) -> u64 {
        self.query_messages + self.answer_messages
    }

    /// Convergence (§3.1): after all activity ceases, the final view
    /// equals the view over the final source state.
    pub fn converged(&self) -> bool {
        self.final_mv == self.final_source_view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;

    fn report(mv: SignedBag, src: SignedBag) -> RunReport {
        RunReport {
            algorithm: "test",
            source_view_states: vec![src.clone()],
            warehouse_view_states: vec![mv.clone()],
            final_mv: mv,
            final_source_view: src,
            quiescent: true,
            query_messages: 3,
            answer_messages: 3,
            notification_messages: 5,
            answer_bytes: 0,
            answer_tuples: 0,
            bytes_s2w: 0,
            bytes_w2s: 0,
            io_reads: 0,
            selfmaint: None,
            trace: Vec::new(),
        }
    }

    #[test]
    fn convergence_compares_final_states() {
        let a = SignedBag::from_tuples([Tuple::ints([1])]);
        assert!(report(a.clone(), a.clone()).converged());
        assert!(!report(a, SignedBag::new()).converged());
    }

    #[test]
    fn maintenance_messages_exclude_notifications() {
        let r = report(SignedBag::new(), SignedBag::new());
        assert_eq!(r.maintenance_messages(), 6);
    }
}
