//! Deterministic discrete-event simulation of the warehouse environment.
//!
//! The paper's anomalies (and its best/worst cost cases) are purely a
//! function of how four event types interleave (§3):
//!
//! * `S_up` — the source executes an update and sends a notification,
//! * `W_up` — the warehouse receives it and (possibly) sends a query,
//! * `S_qu` — the source evaluates a query on its *current* state,
//! * `W_ans` — the warehouse receives the answer and updates the view.
//!
//! Since the transport re-layering, the simulator is a pure *scheduler*:
//! messages move through an [`eca_wire::InMemoryFifo`] pair (encoded on
//! send, decoded on delivery, so byte counts are real and codec faults
//! surface as [`SimError::Transport`]), maintenance state lives in an
//! [`eca_warehouse::Warehouse`] runtime, and the simulator only decides
//! *when* each enabled transport event fires, under a [`Policy`]:
//!
//! * [`Policy::Serial`] — each update fully settles before the next: the
//!   favorable case where ECA degenerates to the basic algorithm,
//! * [`Policy::AllUpdatesFirst`] — every update executes before any query
//!   reaches the source: the paper's anomaly scenario and ECA's worst
//!   case,
//! * [`Policy::Random`] — seeded random interleaving of all enabled
//!   events, used by the property tests to explore histories.
//!
//! Every run records the source's view states `V[ss_0..ss_p]` and each
//! warehouse state, which `eca-consistency` checks against the §3
//! correctness hierarchy. [`MultiSimulation`] drives one warehouse over
//! *several* autonomous sources, each with its own channel and script.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod equiv;
pub mod multi;
pub mod report;
pub mod trace;

use std::collections::VecDeque;

use eca_core::maintainer::ViewMaintainer;
use eca_core::ViewDef;
use eca_relational::{SignedBag, Update};
use eca_source::Source;
use eca_warehouse::{SourceId, ViewId, Warehouse, WarehouseError};
use eca_wire::{InMemoryFifo, Message, TransferMeter, Transport, TransportError, WireQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use chaos::{
    ChaosProfile, ChaosRunReport, ChaosSimulation, ChaosStats, LinkOverhead, Restart, RestartSite,
};
pub use equiv::{
    run_equivalence, run_reactor_tcp, EquivCase, EquivOutcome, EquivSource, EquivTriple,
    MeterCounts,
};
pub use multi::{MultiRunReport, MultiSimulation, SiteId, SiteReport, ViewRunReport};
pub use report::RunReport;
pub use trace::TraceEvent;

/// How source and warehouse events interleave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Each update is fully processed (notification, query, answer,
    /// install) before the next update executes. ECA's best case.
    Serial,
    /// All updates execute at the source before any query arrives there.
    /// The anomaly interleaving of Examples 2–4; ECA's worst case.
    AllUpdatesFirst,
    /// Seeded uniform choice among all enabled events each step.
    Random {
        /// RNG seed (runs are reproducible per seed).
        seed: u64,
    },
}

/// Errors surfaced by a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// The warehouse algorithm failed.
    Core(eca_core::CoreError),
    /// The source failed to answer a query.
    Source(eca_source::SourceError),
    /// A message failed to decode (indicates a codec bug).
    Decode(eca_wire::DecodeError),
    /// The transport failed to move a message.
    Transport(TransportError),
    /// The warehouse runtime failed.
    Warehouse(WarehouseError),
    /// A message kind arrived on a channel that never carries it, or an
    /// expected message was missing — a scheduler bug, reported instead
    /// of panicking.
    Protocol(&'static str),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "warehouse error: {e}"),
            SimError::Source(e) => write!(f, "source error: {e}"),
            SimError::Decode(e) => write!(f, "decode error: {e}"),
            SimError::Transport(e) => write!(f, "transport error: {e}"),
            SimError::Warehouse(e) => write!(f, "warehouse runtime error: {e}"),
            SimError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<eca_core::CoreError> for SimError {
    fn from(e: eca_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<eca_source::SourceError> for SimError {
    fn from(e: eca_source::SourceError) -> Self {
        SimError::Source(e)
    }
}

impl From<eca_wire::DecodeError> for SimError {
    fn from(e: eca_wire::DecodeError) -> Self {
        SimError::Decode(e)
    }
}

impl From<TransportError> for SimError {
    fn from(e: TransportError) -> Self {
        // Preserve the historical Decode variant for codec faults so
        // callers matching on it keep working.
        match e {
            TransportError::Decode(d) => SimError::Decode(d),
            other => SimError::Transport(other),
        }
    }
}

impl From<WarehouseError> for SimError {
    fn from(e: WarehouseError) -> Self {
        match e {
            WarehouseError::Core(c) => SimError::Core(c),
            other => SimError::Warehouse(other),
        }
    }
}

/// The wired-up system: source, warehouse runtime, transport, script.
///
/// ```
/// use eca_core::{algorithms::AlgorithmKind, ViewDef};
/// use eca_relational::{Predicate, Schema, Tuple, Update};
/// use eca_sim::{Policy, Simulation};
/// use eca_source::Source;
/// use eca_storage::Scenario;
///
/// let view = ViewDef::new(
///     "V",
///     vec![Schema::new("r1", &["W", "X"]), Schema::new("r2", &["X", "Y"])],
///     Predicate::col_eq(1, 2),
///     vec![0],
/// )?;
/// let mut source = Source::new(Scenario::Indexed);
/// source.add_relation(Schema::new("r1", &["W", "X"]), 20, None, &[])?;
/// source.add_relation(Schema::new("r2", &["X", "Y"]), 20, None, &[])?;
/// source.load("r1", [Tuple::ints([1, 2])])?;
///
/// let initial = view.eval(&source.snapshot())?;
/// let warehouse = AlgorithmKind::Eca.instantiate(&view, initial)?;
/// let report = Simulation::new(source, warehouse, vec![
///     Update::insert("r2", Tuple::ints([2, 3])),
///     Update::insert("r1", Tuple::ints([4, 2])),
/// ])?
/// .run(Policy::AllUpdatesFirst)?;
///
/// assert!(report.converged());
/// assert_eq!(report.maintenance_messages(), 4); // 2k for ECA
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulation {
    source: Source,
    warehouse: Warehouse,
    source_id: SourceId,
    view_id: ViewId,
    view: ViewDef,
    /// The source's endpoint of the in-memory channel pair.
    src_end: InMemoryFifo,
    /// The warehouse's endpoint.
    wh_end: InMemoryFifo,
    script: VecDeque<Update>,
    meter: TransferMeter,
    source_view_states: Vec<SignedBag>,
    notifications_sent: u64,
    trace: Vec<TraceEvent>,
}

impl Simulation {
    /// Wire a source and a warehouse algorithm with an update script.
    ///
    /// The warehouse's initial `MV` must equal the view evaluated on the
    /// source's initial state (`V[ss_0]`) — the standard starting
    /// condition of the paper's proofs.
    ///
    /// # Errors
    /// Propagates view-evaluation failures on the initial snapshot.
    pub fn new(
        source: Source,
        maintainer: Box<dyn ViewMaintainer>,
        script: Vec<Update>,
    ) -> Result<Self, SimError> {
        let view = maintainer.view().clone();
        let initial_source_view = view.eval(&source.snapshot())?;
        let mut warehouse = Warehouse::new();
        let source_id = warehouse.add_source("source");
        let view_id = warehouse.add_view(source_id, maintainer)?;
        let meter = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(meter.clone());
        Ok(Simulation {
            source,
            warehouse,
            source_id,
            view_id,
            view,
            src_end,
            wh_end,
            script: script.into(),
            meter,
            source_view_states: vec![initial_source_view],
            notifications_sent: 0,
            trace: Vec::new(),
        })
    }

    /// Run to quiescence under `policy` and report.
    ///
    /// # Errors
    /// Propagates warehouse, source, transport and codec errors.
    pub fn run(mut self, policy: Policy) -> Result<RunReport, SimError> {
        match policy {
            Policy::Serial => {
                while self.source_has_update() {
                    self.step_source_update()?;
                    self.drain()?;
                }
            }
            Policy::AllUpdatesFirst => {
                // 1. All updates execute at the source.
                while self.source_has_update() {
                    self.step_source_update()?;
                }
                // 2. The warehouse processes every notification (emitting
                //    queries) before the source answers anything.
                while self.warehouse_has_message() {
                    self.step_warehouse_deliver()?;
                }
                // 3. Everything settles.
                self.drain()?;
            }
            Policy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    let mut enabled = Vec::with_capacity(3);
                    if self.source_has_update() {
                        enabled.push(0u8);
                    }
                    if self.source_has_query() {
                        enabled.push(1);
                    }
                    if self.warehouse_has_message() {
                        enabled.push(2);
                    }
                    if enabled.is_empty() {
                        break;
                    }
                    match enabled[rng.gen_range(0..enabled.len())] {
                        0 => self.step_source_update()?,
                        1 => self.step_source_answer()?,
                        _ => self.step_warehouse_deliver()?,
                    }
                }
            }
        }
        Ok(self.into_report())
    }

    fn source_has_update(&self) -> bool {
        !self.script.is_empty()
    }

    fn source_has_query(&mut self) -> bool {
        self.src_end.has_inbound()
    }

    fn warehouse_has_message(&mut self) -> bool {
        self.wh_end.has_inbound()
    }

    /// Settle all in-flight work (no further updates).
    fn drain(&mut self) -> Result<(), SimError> {
        while self.source_has_query() || self.warehouse_has_message() {
            while self.warehouse_has_message() {
                self.step_warehouse_deliver()?;
            }
            while self.source_has_query() {
                self.step_source_answer()?;
            }
        }
        Ok(())
    }

    /// `S_up`: execute the next scripted update, notify the warehouse.
    fn step_source_update(&mut self) -> Result<(), SimError> {
        let Some(update) = self.script.pop_front() else {
            return Err(SimError::Protocol("S_up fired with an empty script"));
        };
        let effective = self.source.execute_update(&update);
        self.trace.push(TraceEvent::SourceUpdate {
            update: update.clone(),
            effective,
        });
        if effective {
            self.source_view_states
                .push(self.view.eval(&self.source.snapshot())?);
            self.src_end.send(&Message::UpdateNotification { update })?;
            self.notifications_sent += 1;
        }
        Ok(())
    }

    /// `S_qu`: answer the oldest pending query on the current state.
    fn step_source_answer(&mut self) -> Result<(), SimError> {
        let msg = self.src_end.try_recv()?;
        let Some(Message::QueryRequest { id, query }) = msg else {
            return Err(SimError::Protocol(
                "S_qu fired without a QueryRequest pending",
            ));
        };
        let answer = self.source.answer(&query)?;
        self.trace.push(TraceEvent::SourceAnswer {
            id,
            tuples: answer.pos_len() + answer.neg_len(),
        });
        let payload_bytes = answer.encoded_len() as u64;
        let tuples = answer.pos_len() + answer.neg_len();
        self.meter.record_answer_payload(payload_bytes, tuples);
        self.src_end.send(&Message::QueryAnswer { id, answer })?;
        Ok(())
    }

    /// `W_up`/`W_ans`: deliver the oldest source→warehouse message.
    fn step_warehouse_deliver(&mut self) -> Result<(), SimError> {
        // The transport decodes on delivery: byte counts and decodability
        // are exercised on every message.
        let Some(msg) = self.wh_end.try_recv()? else {
            return Err(SimError::Protocol(
                "warehouse delivery fired with an empty channel",
            ));
        };
        let outbound = match msg {
            Message::UpdateNotification { update } => {
                let queries = self.warehouse.on_update(self.source_id, &update)?;
                self.trace.push(TraceEvent::WarehouseUpdate {
                    update,
                    queries_sent: queries.iter().map(|q| q.id).collect(),
                });
                queries
            }
            Message::QueryAnswer { id, answer } => {
                let queries = self.warehouse.on_answer(self.source_id, id, answer)?;
                self.trace.push(TraceEvent::WarehouseAnswer { id });
                queries
            }
            Message::QueryRequest { .. } => {
                return Err(SimError::Protocol("s2w never carries QueryRequest"));
            }
            Message::Frame { .. } | Message::Ack { .. } | Message::Hello { .. } => {
                return Err(SimError::Protocol(
                    "session-layer envelope leaked past the transport",
                ));
            }
            Message::ReadQuery { .. } | Message::ReadAnswer { .. } | Message::ReadError { .. } => {
                return Err(SimError::Protocol(
                    "read-serving message on a maintenance channel",
                ));
            }
        };
        for q in outbound {
            self.wh_end.send(&Message::QueryRequest {
                id: q.id,
                query: WireQuery::from_query(&q.query),
            })?;
        }
        Ok(())
    }

    fn into_report(self) -> RunReport {
        let final_source_view = self.source_view_states.last().cloned().unwrap_or_default();
        RunReport {
            algorithm: self.warehouse.maintainer(self.view_id).algorithm(),
            source_view_states: self.source_view_states,
            warehouse_view_states: self.warehouse.view_states(self.view_id).to_vec(),
            final_mv: self.warehouse.materialized(self.view_id).clone(),
            final_source_view,
            quiescent: self.warehouse.is_quiescent(),
            query_messages: self.meter.messages_w2s(),
            answer_messages: self.meter.messages_s2w() - self.notifications_sent,
            notification_messages: self.notifications_sent,
            answer_bytes: self.meter.answer_bytes(),
            answer_tuples: self.meter.answer_tuples(),
            bytes_s2w: self.meter.bytes_s2w(),
            bytes_w2s: self.meter.bytes_w2s(),
            io_reads: self.source.io_meter().query_reads(),
            selfmaint: self.warehouse.maintainer(self.view_id).selfmaint_stats(),
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::algorithms::AlgorithmKind;
    use eca_relational::{Predicate, Schema, Tuple};
    use eca_storage::Scenario;

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    fn make_sim(kind: AlgorithmKind, script: Vec<Update>) -> Simulation {
        let view = view2();
        let mut source = Source::new(Scenario::Indexed);
        source
            .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
            .unwrap();
        source
            .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
            .unwrap();
        source.load("r1", [Tuple::ints([1, 2])]).unwrap();
        let snapshot = source.snapshot();
        let initial = view.eval(&snapshot).unwrap();
        let warehouse = kind
            .instantiate_with_base(&view, initial, Some(snapshot))
            .unwrap();
        Simulation::new(source, warehouse, script).unwrap()
    }

    fn example2_script() -> Vec<Update> {
        vec![
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
        ]
    }

    #[test]
    fn basic_is_wrong_under_adversarial_policy() {
        let report = make_sim(AlgorithmKind::Basic, example2_script())
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        assert!(!report.converged());
        assert_eq!(
            report.final_mv.count(&Tuple::ints([4])),
            2,
            "the Example 2 anomaly"
        );
    }

    #[test]
    fn basic_is_correct_under_serial_policy() {
        let report = make_sim(AlgorithmKind::Basic, example2_script())
            .run(Policy::Serial)
            .unwrap();
        assert!(report.converged());
    }

    #[test]
    fn eca_is_correct_under_adversarial_policy() {
        let report = make_sim(AlgorithmKind::Eca, example2_script())
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        assert!(report.converged());
        assert_eq!(report.final_mv.count(&Tuple::ints([1])), 1);
        assert_eq!(report.final_mv.count(&Tuple::ints([4])), 1);
    }

    #[test]
    fn eca_correct_under_random_policies() {
        for seed in 0..20 {
            let report = make_sim(AlgorithmKind::Eca, example2_script())
                .run(Policy::Random { seed })
                .unwrap();
            assert!(report.converged(), "seed {seed}");
            assert!(report.quiescent, "seed {seed}");
        }
    }

    #[test]
    fn message_counts_match_paper_formulas() {
        // ECA: k updates → k queries + k answers (§6.1).
        let report = make_sim(AlgorithmKind::Eca, example2_script())
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        assert_eq!(report.query_messages, 2);
        assert_eq!(report.answer_messages, 2);
        assert_eq!(report.notification_messages, 2);
        assert_eq!(report.maintenance_messages(), 4);

        // RV with s = k: one recompute → 2 messages.
        let report = make_sim(
            AlgorithmKind::RecomputeView { period: 2 },
            example2_script(),
        )
        .run(Policy::AllUpdatesFirst)
        .unwrap();
        assert_eq!(report.maintenance_messages(), 2);
        assert!(report.converged());
    }

    #[test]
    fn store_copies_never_messages() {
        let report = make_sim(AlgorithmKind::StoreCopies, example2_script())
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        assert_eq!(report.maintenance_messages(), 0);
        assert!(report.converged());
    }

    fn make_keyed_sim(kind: AlgorithmKind, script: Vec<Update>) -> Simulation {
        let view = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let mut source = Source::new(Scenario::Indexed);
        source
            .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
            .unwrap();
        source
            .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
            .unwrap();
        source.load("r1", [Tuple::ints([1, 2])]).unwrap();
        let snapshot = source.snapshot();
        let initial = view.eval(&snapshot).unwrap();
        let warehouse = kind
            .instantiate_with_base(&view, initial, Some(snapshot))
            .unwrap();
        Simulation::new(source, warehouse, script).unwrap()
    }

    #[test]
    fn eca_aux_answers_locally_with_zero_wire_traffic() {
        // A fully keyed view: every compensating query is answered at the
        // warehouse. Logical meters (M) and raw meters (bytes on the
        // query link) must both read zero.
        let report = make_keyed_sim(AlgorithmKind::EcaAux, example2_script())
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        assert!(report.converged());
        assert!(report.quiescent);
        assert_eq!(report.maintenance_messages(), 0);
        assert_eq!(report.bytes_w2s, 0, "no query frame touches the wire");
        assert_eq!(report.answer_bytes, 0);
        assert_eq!(report.io_reads, 0, "the source is never consulted");
        let stats = report.selfmaint.expect("EcaAux reports stats");
        assert_eq!(stats.local_updates, 2);
        assert_eq!(stats.remote_updates, 0);
        assert!(stats.aux_bytes > 0, "the savings are paid for in storage");
    }

    #[test]
    fn eca_aux_matches_eca_under_random_policies() {
        for seed in 0..20 {
            let aux = make_keyed_sim(AlgorithmKind::EcaAux, example2_script())
                .run(Policy::Random { seed })
                .unwrap();
            let eca = make_keyed_sim(AlgorithmKind::Eca, example2_script())
                .run(Policy::Random { seed })
                .unwrap();
            assert!(aux.converged(), "seed {seed}");
            assert_eq!(aux.final_mv, eca.final_mv, "seed {seed}");
            assert!(
                aux.maintenance_messages() <= eca.maintenance_messages(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn byte_meters_are_populated() {
        let report = make_sim(AlgorithmKind::Eca, example2_script())
            .run(Policy::Serial)
            .unwrap();
        assert!(report.answer_bytes > 0);
        assert!(report.bytes_w2s > 0);
        assert!(report.answer_tuples >= 2);
    }

    #[test]
    fn trace_records_event_flow() {
        let report = make_sim(AlgorithmKind::Eca, example2_script())
            .run(Policy::Serial)
            .unwrap();
        let kinds: Vec<&'static str> = report.trace.iter().map(TraceEvent::kind).collect();
        assert_eq!(kinds[0], "S_up");
        assert!(kinds.contains(&"W_up"));
        assert!(kinds.contains(&"S_qu"));
        assert!(kinds.contains(&"W_ans"));
    }

    #[test]
    fn ineffective_updates_are_not_notified() {
        let script = vec![Update::delete("r1", Tuple::ints([9, 9]))];
        let report = make_sim(AlgorithmKind::Eca, script)
            .run(Policy::Serial)
            .unwrap();
        assert_eq!(report.notification_messages, 0);
        assert!(report.converged());
    }

    /// LCA buffers per-update deltas and can close several of them on one
    /// answer; the scheduler must consume the buffered intermediate
    /// states after *every* event, or the consistency checker would see a
    /// history with holes.
    #[test]
    fn lca_intermediate_states_survive_random_scheduling() {
        for seed in 0..25 {
            let report = make_sim(AlgorithmKind::Lca, example2_script())
                .run(Policy::Random { seed })
                .unwrap();
            assert!(report.converged(), "seed {seed}");
            // Each of the two effective updates contributes its own delta
            // state; with intermediates consumed, the deduped warehouse
            // history must walk through every source state in order —
            // LCA's complete-consistency guarantee, which fails if any
            // intermediate state is dropped.
            let mut src_iter = report.source_view_states.iter();
            for wh_state in &report.warehouse_view_states {
                if src_iter.clone().next() == Some(wh_state) {
                    continue;
                }
                src_iter.next();
            }
            for src_state in &report.source_view_states {
                assert!(
                    report.warehouse_view_states.contains(src_state),
                    "seed {seed}: source state missing from warehouse history"
                );
            }
        }
    }
}
