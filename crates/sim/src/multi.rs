//! One warehouse over many autonomous sources (paper §1 Figure 1.1).
//!
//! [`MultiSimulation`] generalizes [`Simulation`](crate::Simulation):
//! each registered source owns its script, its own in-memory channel
//! pair and its own [`TransferMeter`]; a single
//! [`eca_warehouse::Warehouse`] hosts every view and routes events per
//! source channel. The §3 FIFO assumption holds *per channel* — the
//! interleaving **across** channels is exactly what a [`Policy`]
//! schedules, so random runs exercise the paper's multi-source setting
//! where each view is maintained independently (§7).

use std::collections::VecDeque;

use eca_core::maintainer::ViewMaintainer;
use eca_core::ViewDef;
use eca_relational::{SignedBag, Update};
use eca_source::Source;
use eca_warehouse::{SourceId, ViewId, Warehouse};
use eca_wire::{InMemoryFifo, Message, TransferMeter, Transport, WireQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Policy, SimError, TraceEvent};

/// Handle to a source site registered with a [`MultiSimulation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteId(pub usize);

struct Site {
    name: String,
    source_id: SourceId,
    source: Source,
    script: VecDeque<Update>,
    src_end: InMemoryFifo,
    wh_end: InMemoryFifo,
    meter: TransferMeter,
    notifications_sent: u64,
}

struct ViewInfo {
    site: usize,
    view: ViewDef,
    /// `V[ss_0..ss_p]` of the owning site, one entry per effective
    /// update there.
    source_states: Vec<SignedBag>,
}

/// Per-view outcome of a multi-source run, in the shape
/// `eca_consistency::check` consumes.
#[derive(Clone, Debug)]
pub struct ViewRunReport {
    /// The view's name.
    pub view_name: String,
    /// The site the view is maintained over.
    pub site: SiteId,
    /// The maintaining algorithm's label.
    pub algorithm: &'static str,
    /// The view evaluated at its source after the initial state and each
    /// effective update there.
    pub source_view_states: Vec<SignedBag>,
    /// `MV` after the initial state and each warehouse event that
    /// reached this view.
    pub warehouse_view_states: Vec<SignedBag>,
    /// The final materialized view.
    pub final_mv: SignedBag,
    /// The final source-side view state.
    pub final_source_view: SignedBag,
}

impl ViewRunReport {
    /// Convergence (§3.1): final `MV` equals the view over the final
    /// source state.
    pub fn converged(&self) -> bool {
        self.final_mv == self.final_source_view
    }
}

/// Per-site message/byte meters of a multi-source run.
#[derive(Clone, Debug)]
pub struct SiteReport {
    /// The site's registered name.
    pub name: String,
    /// Query messages warehouse → this site.
    pub query_messages: u64,
    /// Answer messages this site → warehouse.
    pub answer_messages: u64,
    /// Update notifications this site → warehouse.
    pub notification_messages: u64,
    /// Answer payload bytes from this site (the paper's `B`).
    pub answer_bytes: u64,
    /// Answer payload tuple occurrences from this site.
    pub answer_tuples: u64,
    /// Total bytes this site → warehouse.
    pub bytes_s2w: u64,
    /// Total bytes warehouse → this site.
    pub bytes_w2s: u64,
}

/// Everything observed during one multi-source run.
#[derive(Clone, Debug)]
pub struct MultiRunReport {
    /// One report per hosted view, in registration order.
    pub views: Vec<ViewRunReport>,
    /// One report per site, in registration order.
    pub sites: Vec<SiteReport>,
    /// Whether the warehouse ended with no outstanding work.
    pub quiescent: bool,
    /// The interleaved event trace, each event tagged with its site.
    pub trace: Vec<(SiteId, TraceEvent)>,
}

impl MultiRunReport {
    /// Whether every view converged.
    pub fn converged(&self) -> bool {
        self.views.iter().all(ViewRunReport::converged)
    }
}

/// One warehouse runtime scheduled over several autonomous sources.
///
/// ```
/// use eca_core::{algorithms::AlgorithmKind, ViewDef};
/// use eca_relational::{Predicate, Schema, Tuple, Update};
/// use eca_sim::{MultiSimulation, Policy};
/// use eca_source::Source;
/// use eca_storage::Scenario;
///
/// let view = ViewDef::new(
///     "V",
///     vec![Schema::new("r1", &["W", "X"]), Schema::new("r2", &["X", "Y"])],
///     Predicate::col_eq(1, 2),
///     vec![0],
/// )?;
/// let mut source = Source::new(Scenario::Indexed);
/// source.add_relation(Schema::new("r1", &["W", "X"]), 20, None, &[])?;
/// source.add_relation(Schema::new("r2", &["X", "Y"]), 20, None, &[])?;
/// source.load("r1", [Tuple::ints([1, 2])])?;
/// let initial = view.eval(&source.snapshot())?;
/// let maintainer = AlgorithmKind::Eca.instantiate(&view, initial)?;
///
/// let mut sim = MultiSimulation::new();
/// let site = sim.add_source("s1", source, vec![
///     Update::insert("r2", Tuple::ints([2, 3])),
/// ]);
/// sim.add_view(site, maintainer)?;
/// let report = sim.run(Policy::Random { seed: 7 })?;
/// assert!(report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MultiSimulation {
    warehouse: Warehouse,
    sites: Vec<Site>,
    views: Vec<ViewInfo>,
    trace: Vec<(SiteId, TraceEvent)>,
}

impl Default for MultiSimulation {
    fn default() -> Self {
        MultiSimulation::new()
    }
}

impl MultiSimulation {
    /// An empty system: no sources, no views.
    pub fn new() -> Self {
        MultiSimulation {
            warehouse: Warehouse::new(),
            sites: Vec::new(),
            views: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Register an autonomous source with its update script. Each site
    /// gets a dedicated FIFO channel pair and meter.
    pub fn add_source(
        &mut self,
        name: impl Into<String>,
        source: Source,
        script: Vec<Update>,
    ) -> SiteId {
        let name = name.into();
        let source_id = self.warehouse.add_source(name.clone());
        let meter = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(meter.clone());
        self.sites.push(Site {
            name,
            source_id,
            source,
            script: script.into(),
            src_end,
            wh_end,
            meter,
            notifications_sent: 0,
        });
        SiteId(self.sites.len() - 1)
    }

    /// Host a view over `site`. The maintainer's initial `MV` must equal
    /// the view evaluated on the site's current state.
    ///
    /// # Errors
    /// Propagates view-evaluation failures on the initial snapshot.
    pub fn add_view(
        &mut self,
        site: SiteId,
        maintainer: Box<dyn ViewMaintainer>,
    ) -> Result<ViewId, SimError> {
        let view = maintainer.view().clone();
        let initial = view.eval(&self.sites[site.0].source.snapshot())?;
        let id = self
            .warehouse
            .add_view(self.sites[site.0].source_id, maintainer)?;
        self.views.push(ViewInfo {
            site: site.0,
            view,
            source_states: vec![initial],
        });
        Ok(id)
    }

    /// Run to quiescence under `policy` and report.
    ///
    /// # Errors
    /// Propagates warehouse, source, transport and codec errors.
    pub fn run(mut self, policy: Policy) -> Result<MultiRunReport, SimError> {
        match policy {
            Policy::Serial => {
                // Round-robin over sites; each update settles everywhere
                // before the next fires.
                while self.sites.iter().any(|s| !s.script.is_empty()) {
                    for i in 0..self.sites.len() {
                        if !self.sites[i].script.is_empty() {
                            self.step_source_update(i)?;
                            self.drain_all()?;
                        }
                    }
                }
            }
            Policy::AllUpdatesFirst => {
                for i in 0..self.sites.len() {
                    while !self.sites[i].script.is_empty() {
                        self.step_source_update(i)?;
                    }
                }
                for i in 0..self.sites.len() {
                    while self.sites[i].wh_end.has_inbound() {
                        self.step_warehouse_deliver(i)?;
                    }
                }
                self.drain_all()?;
            }
            Policy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    let mut enabled: Vec<(usize, u8)> = Vec::new();
                    for i in 0..self.sites.len() {
                        if !self.sites[i].script.is_empty() {
                            enabled.push((i, 0));
                        }
                        if self.sites[i].src_end.has_inbound() {
                            enabled.push((i, 1));
                        }
                        if self.sites[i].wh_end.has_inbound() {
                            enabled.push((i, 2));
                        }
                    }
                    if enabled.is_empty() {
                        break;
                    }
                    let (site, ev) = enabled[rng.gen_range(0..enabled.len())];
                    match ev {
                        0 => self.step_source_update(site)?,
                        1 => self.step_source_answer(site)?,
                        _ => self.step_warehouse_deliver(site)?,
                    }
                }
            }
        }
        Ok(self.into_report())
    }

    fn drain_all(&mut self) -> Result<(), SimError> {
        loop {
            let mut progressed = false;
            for i in 0..self.sites.len() {
                while self.sites[i].wh_end.has_inbound() {
                    self.step_warehouse_deliver(i)?;
                    progressed = true;
                }
                while self.sites[i].src_end.has_inbound() {
                    self.step_source_answer(i)?;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// `S_up` at site `i`.
    fn step_source_update(&mut self, i: usize) -> Result<(), SimError> {
        let Some(update) = self.sites[i].script.pop_front() else {
            return Err(SimError::Protocol("S_up fired with an empty script"));
        };
        let effective = self.sites[i].source.execute_update(&update);
        self.trace.push((
            SiteId(i),
            TraceEvent::SourceUpdate {
                update: update.clone(),
                effective,
            },
        ));
        if effective {
            let snapshot = self.sites[i].source.snapshot();
            for info in self.views.iter_mut().filter(|v| v.site == i) {
                info.source_states.push(info.view.eval(&snapshot)?);
            }
            self.sites[i]
                .src_end
                .send(&Message::UpdateNotification { update })?;
            self.sites[i].notifications_sent += 1;
        }
        Ok(())
    }

    /// `S_qu` at site `i`.
    fn step_source_answer(&mut self, i: usize) -> Result<(), SimError> {
        let site = &mut self.sites[i];
        let Some(Message::QueryRequest { id, query }) = site.src_end.try_recv()? else {
            return Err(SimError::Protocol(
                "S_qu fired without a QueryRequest pending",
            ));
        };
        let answer = site.source.answer(&query)?;
        self.trace.push((
            SiteId(i),
            TraceEvent::SourceAnswer {
                id,
                tuples: answer.pos_len() + answer.neg_len(),
            },
        ));
        site.meter.record_answer_payload(
            answer.encoded_len() as u64,
            answer.pos_len() + answer.neg_len(),
        );
        site.src_end.send(&Message::QueryAnswer { id, answer })?;
        Ok(())
    }

    /// `W_up`/`W_ans` for site `i`'s channel.
    fn step_warehouse_deliver(&mut self, i: usize) -> Result<(), SimError> {
        let source_id = self.sites[i].source_id;
        let Some(msg) = self.sites[i].wh_end.try_recv()? else {
            return Err(SimError::Protocol(
                "warehouse delivery fired with an empty channel",
            ));
        };
        let outbound = match msg {
            Message::UpdateNotification { update } => {
                let queries = self.warehouse.on_update(source_id, &update)?;
                self.trace.push((
                    SiteId(i),
                    TraceEvent::WarehouseUpdate {
                        update,
                        queries_sent: queries.iter().map(|q| q.id).collect(),
                    },
                ));
                queries
            }
            Message::QueryAnswer { id, answer } => {
                let queries = self.warehouse.on_answer(source_id, id, answer)?;
                self.trace
                    .push((SiteId(i), TraceEvent::WarehouseAnswer { id }));
                queries
            }
            Message::QueryRequest { .. } => {
                return Err(SimError::Protocol("s2w never carries QueryRequest"));
            }
            Message::Frame { .. } | Message::Ack { .. } | Message::Hello { .. } => {
                return Err(SimError::Protocol(
                    "session-layer envelope leaked past the transport",
                ));
            }
            Message::ReadQuery { .. } | Message::ReadAnswer { .. } | Message::ReadError { .. } => {
                return Err(SimError::Protocol(
                    "read-serving message on a maintenance channel",
                ));
            }
        };
        for q in outbound {
            self.sites[i].wh_end.send(&Message::QueryRequest {
                id: q.id,
                query: WireQuery::from_query(&q.query),
            })?;
        }
        Ok(())
    }

    fn into_report(self) -> MultiRunReport {
        let quiescent = self.warehouse.is_quiescent();
        let views = self
            .views
            .iter()
            .enumerate()
            .map(|(idx, info)| {
                let id = ViewId(idx);
                ViewRunReport {
                    view_name: info.view.name().to_string(),
                    site: SiteId(info.site),
                    algorithm: self.warehouse.maintainer(id).algorithm(),
                    source_view_states: info.source_states.clone(),
                    warehouse_view_states: self.warehouse.view_states(id).to_vec(),
                    final_mv: self.warehouse.materialized(id).clone(),
                    final_source_view: info.source_states.last().cloned().unwrap_or_default(),
                }
            })
            .collect();
        let sites = self
            .sites
            .iter()
            .map(|s| SiteReport {
                name: s.name.clone(),
                query_messages: s.meter.messages_w2s(),
                answer_messages: s.meter.messages_s2w() - s.notifications_sent,
                notification_messages: s.notifications_sent,
                answer_bytes: s.meter.answer_bytes(),
                answer_tuples: s.meter.answer_tuples(),
                bytes_s2w: s.meter.bytes_s2w(),
                bytes_w2s: s.meter.bytes_w2s(),
            })
            .collect();
        MultiRunReport {
            views,
            sites,
            quiescent,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::algorithms::AlgorithmKind;
    use eca_relational::{Predicate, Schema, Tuple};
    use eca_storage::Scenario;

    fn site_a() -> (Source, ViewDef, Vec<Update>) {
        let view = ViewDef::new(
            "V1",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let mut source = Source::new(Scenario::Indexed);
        source
            .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
            .unwrap();
        source
            .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
            .unwrap();
        source.load("r1", [Tuple::ints([1, 2])]).unwrap();
        let script = vec![
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
        ];
        (source, view, script)
    }

    fn site_b() -> (Source, ViewDef, Vec<Update>) {
        let view = ViewDef::new(
            "V2",
            vec![
                Schema::new("r3", &["A", "B"]),
                Schema::new("r4", &["B", "C"]),
            ],
            Predicate::col_eq(1, 2),
            vec![1],
        )
        .unwrap();
        let mut source = Source::new(Scenario::Indexed);
        source
            .add_relation(Schema::new("r3", &["A", "B"]), 20, Some("B"), &[])
            .unwrap();
        source
            .add_relation(Schema::new("r4", &["B", "C"]), 20, Some("B"), &[])
            .unwrap();
        source.load("r4", [Tuple::ints([5, 6])]).unwrap();
        let script = vec![
            Update::insert("r3", Tuple::ints([9, 5])),
            Update::delete("r4", Tuple::ints([5, 6])),
        ];
        (source, view, script)
    }

    fn build(kind: AlgorithmKind) -> MultiSimulation {
        let mut sim = MultiSimulation::new();
        for (name, (source, view, script)) in [("a", site_a()), ("b", site_b())] {
            let snapshot = source.snapshot();
            let initial = view.eval(&snapshot).unwrap();
            let maintainer = kind
                .instantiate_with_base(&view, initial, Some(snapshot))
                .unwrap();
            let site = sim.add_source(name, source, script);
            sim.add_view(site, maintainer).unwrap();
        }
        sim
    }

    #[test]
    fn two_sources_two_views_converge_under_every_policy() {
        for policy in [
            Policy::Serial,
            Policy::AllUpdatesFirst,
            Policy::Random { seed: 11 },
        ] {
            let report = build(AlgorithmKind::Eca).run(policy).unwrap();
            assert!(report.quiescent, "{policy:?}");
            assert!(report.converged(), "{policy:?}");
            assert_eq!(report.views.len(), 2);
            assert_eq!(report.sites.len(), 2);
        }
    }

    #[test]
    fn each_view_is_strongly_consistent_under_random_interleavings() {
        for seed in 0..15 {
            let report = build(AlgorithmKind::Eca)
                .run(Policy::Random { seed })
                .unwrap();
            for v in &report.views {
                let c = eca_consistency::check(&v.source_view_states, &v.warehouse_view_states);
                assert!(
                    c.level() >= eca_consistency::Level::StronglyConsistent,
                    "seed {seed}, view {}: {:?}",
                    v.view_name,
                    c.level()
                );
            }
        }
    }

    #[test]
    fn per_site_meters_are_independent() {
        let report = build(AlgorithmKind::Eca)
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        for site in &report.sites {
            // Each site saw its own 2 updates: 2 queries + 2 answers.
            assert_eq!(site.notification_messages, 2, "{}", site.name);
            assert_eq!(site.query_messages, 2, "{}", site.name);
            assert_eq!(site.answer_messages, 2, "{}", site.name);
            assert!(site.answer_bytes > 0);
        }
    }

    fn build_keyed(kind: AlgorithmKind) -> MultiSimulation {
        // The same two sites, with key metadata declared on the view
        // schemas so self-maintaining algorithms cover every relation.
        let mut sim = MultiSimulation::new();
        for (name, (source, view, script)) in [("a", site_a()), ("b", site_b())] {
            let keyed: Vec<Schema> = view
                .base()
                .iter()
                .map(|s| {
                    let attrs: Vec<&str> = s.attrs().iter().map(String::as_str).collect();
                    Schema::with_key(s.relation(), &attrs, &attrs).unwrap()
                })
                .collect();
            let view = ViewDef::new(
                view.name(),
                keyed,
                view.cond().clone(),
                view.proj().to_vec(),
            )
            .unwrap();
            let snapshot = source.snapshot();
            let initial = view.eval(&snapshot).unwrap();
            let maintainer = kind
                .instantiate_with_base(&view, initial, Some(snapshot))
                .unwrap();
            let site = sim.add_source(name, source, script);
            sim.add_view(site, maintainer).unwrap();
        }
        sim
    }

    #[test]
    fn eca_aux_is_strongly_consistent_across_sites() {
        for seed in 0..15 {
            let report = build_keyed(AlgorithmKind::EcaAux)
                .run(Policy::Random { seed })
                .unwrap();
            assert!(report.quiescent, "seed {seed}");
            assert!(report.converged(), "seed {seed}");
            for v in &report.views {
                let c = eca_consistency::check(&v.source_view_states, &v.warehouse_view_states);
                assert!(
                    c.level() >= eca_consistency::Level::StronglyConsistent,
                    "seed {seed}, view {}: {:?}",
                    v.view_name,
                    c.level()
                );
            }
        }
    }

    #[test]
    fn eca_aux_keeps_every_link_quiet() {
        // Self-maintained views: per-link meters must show the savings —
        // notifications flow, but no query or answer ever crosses.
        let report = build_keyed(AlgorithmKind::EcaAux)
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        assert!(report.converged());
        for site in &report.sites {
            assert_eq!(site.notification_messages, 2, "{}", site.name);
            assert_eq!(site.query_messages, 0, "{}", site.name);
            assert_eq!(site.answer_messages, 0, "{}", site.name);
            assert_eq!(site.answer_bytes, 0, "{}", site.name);
        }
    }

    #[test]
    fn cross_channel_ids_may_collide_but_route_correctly() {
        // Both sessions start their global id space at 1; the same
        // numeric id on different channels must reach different views.
        let report = build(AlgorithmKind::Eca)
            .run(Policy::Random { seed: 3 })
            .unwrap();
        let ids_a: Vec<_> = report
            .trace
            .iter()
            .filter_map(|(s, e)| match e {
                TraceEvent::WarehouseAnswer { id } if *s == SiteId(0) => Some(*id),
                _ => None,
            })
            .collect();
        let ids_b: Vec<_> = report
            .trace
            .iter()
            .filter_map(|(s, e)| match e {
                TraceEvent::WarehouseAnswer { id } if *s == SiteId(1) => Some(*id),
                _ => None,
            })
            .collect();
        assert!(!ids_a.is_empty() && !ids_b.is_empty());
        assert!(ids_a.iter().any(|id| ids_b.contains(id)));
        assert!(report.converged());
    }
}
