//! Runtime-equivalence harness: one deployment, three runtimes, one
//! verdict.
//!
//! The §3 correctness argument never mentions threads: it needs FIFO
//! delivery per channel and atomic per-event state transitions. All
//! three warehouse runtimes — the serial [`Warehouse`], the
//! thread-per-source [`eca_warehouse::ConcurrentWarehouse`], and the
//! worker-pool [`eca_warehouse::ReactorWarehouse`] — promise exactly
//! that, and the `serve` protocol (whole script first, then answers in
//! query order) makes each channel's event sequence *deterministic*: the
//! warehouse sees `U_1 … U_n` then `A_1 … A_m` per source regardless of
//! scheduling. So every observable that is a function of per-source
//! event order — view state histories, final materializations, message
//! and byte meters — must be **byte-identical** across runtimes, and
//! this module exists to assert precisely that on real deployments
//! (`tests/golden_trace.rs` pins the fingerprints).

use eca_core::maintainer::ViewMaintainer;
use eca_relational::{SignedBag, Update};
use eca_source::{serve_fleet, FleetMember, Source};
use eca_warehouse::{connect_source, SourceId, ViewId, Warehouse};
use eca_wire::{Message, Poller, SharedFifo, TransferMeter, Transport, TransportError};

use crate::SimError;

/// One autonomous site of an equivalence deployment.
pub struct EquivSource {
    /// The source site, already loaded.
    pub source: Source,
    /// Its update script.
    pub script: Vec<Update>,
    /// Maintainers for the views hosted over this source.
    pub maintainers: Vec<Box<dyn ViewMaintainer>>,
}

/// A whole deployment: sites plus the views over them. Built fresh (via
/// a closure) for every runtime, since maintainers are consumed.
pub struct EquivCase {
    /// The deployment's sites in registration order.
    pub sources: Vec<EquivSource>,
}

/// The per-link meter counters that must agree across runtimes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeterCounts {
    /// Messages source → warehouse (notifications + answers).
    pub messages_s2w: u64,
    /// Messages warehouse → source (queries).
    pub messages_w2s: u64,
    /// Bytes source → warehouse.
    pub bytes_s2w: u64,
    /// Bytes warehouse → source.
    pub bytes_w2s: u64,
    /// Answer payload bytes (the paper's `B`).
    pub answer_bytes: u64,
    /// Answer payload tuple occurrences.
    pub answer_tuples: u64,
}

impl MeterCounts {
    fn of(meter: &TransferMeter) -> MeterCounts {
        MeterCounts {
            messages_s2w: meter.messages_s2w(),
            messages_w2s: meter.messages_w2s(),
            bytes_s2w: meter.bytes_s2w(),
            bytes_w2s: meter.bytes_w2s(),
            answer_bytes: meter.answer_bytes(),
            answer_tuples: meter.answer_tuples(),
        }
    }
}

/// Everything one runtime produced that §3 says must not depend on
/// scheduling.
#[derive(Debug, PartialEq)]
pub struct EquivOutcome {
    /// Per view (registration order): every `MV` state it passed
    /// through, initial state first.
    pub view_states: Vec<Vec<SignedBag>>,
    /// Per view: the final materialization.
    pub finals: Vec<SignedBag>,
    /// Per source: the link meters.
    pub meters: Vec<MeterCounts>,
}

impl EquivOutcome {
    /// A stable rendering for fingerprinting (FNV over this string is
    /// what the golden tests pin).
    pub fn render(&self) -> String {
        format!(
            "states{:?}|finals{:?}|meters{:?}",
            self.view_states, self.finals, self.meters
        )
    }
}

/// All three runtimes' outcomes for one deployment.
#[derive(Debug)]
pub struct EquivTriple {
    /// The serial single-threaded reference.
    pub serial: EquivOutcome,
    /// Thread-per-source (`ConcurrentWarehouse::pump_all`).
    pub concurrent: EquivOutcome,
    /// Worker-pool reactor (`ReactorWarehouse::run`).
    pub reactor: EquivOutcome,
}

impl EquivTriple {
    /// Whether the three runtimes agree on every observable.
    pub fn agree(&self) -> bool {
        self.serial == self.concurrent && self.serial == self.reactor
    }
}

/// Wire a fresh case into a warehouse + transports, returning everything
/// a runtime driver needs.
struct Wired {
    warehouse: Warehouse,
    sources: Vec<Source>,
    scripts: Vec<Vec<Update>>,
    src_ends: Vec<SharedFifo>,
    wh_ends: Vec<SharedFifo>,
    meters: Vec<TransferMeter>,
    view_ids: Vec<ViewId>,
}

fn wire(case: EquivCase) -> Result<Wired, SimError> {
    let mut w = Wired {
        warehouse: Warehouse::new(),
        sources: Vec::new(),
        scripts: Vec::new(),
        src_ends: Vec::new(),
        wh_ends: Vec::new(),
        meters: Vec::new(),
        view_ids: Vec::new(),
    };
    for (s, site) in case.sources.into_iter().enumerate() {
        let src = w.warehouse.add_source(format!("s{s}"));
        for maintainer in site.maintainers {
            w.view_ids.push(w.warehouse.add_view(src, maintainer)?);
        }
        let meter = TransferMeter::new();
        let (src_end, wh_end) = SharedFifo::pair(meter.clone());
        w.sources.push(site.source);
        w.scripts.push(site.script);
        w.src_ends.push(src_end);
        w.wh_ends.push(wh_end);
        w.meters.push(meter);
    }
    Ok(w)
}

fn outcome_of(
    view_states: Vec<Vec<SignedBag>>,
    finals: Vec<SignedBag>,
    meters: &[TransferMeter],
) -> EquivOutcome {
    EquivOutcome {
        view_states,
        finals,
        meters: meters.iter().map(MeterCounts::of).collect(),
    }
}

/// Serial reference: one thread interleaves script execution, warehouse
/// pumping and source answering. `Warehouse::pump` records answer
/// payloads on the shared meter, so the source side must not.
fn run_serial(case: EquivCase) -> Result<EquivOutcome, SimError> {
    let mut w = wire(case)?;
    for s in 0..w.sources.len() {
        for u in &w.scripts[s].clone() {
            if w.sources[s].execute_update(u) {
                w.src_ends[s].send(&Message::UpdateNotification { update: u.clone() })?;
            }
        }
    }
    loop {
        let mut progress = false;
        for s in 0..w.sources.len() {
            progress |= w.warehouse.pump(SourceId(s), &mut w.wh_ends[s])? > 0;
            while let Some(msg) = w.src_ends[s].try_recv()? {
                let Message::QueryRequest { id, query } = msg else {
                    return Err(SimError::Protocol("s2w never carries QueryRequest"));
                };
                let answer = w.sources[s].answer(&query)?;
                w.src_ends[s].send(&Message::QueryAnswer { id, answer })?;
                progress = true;
            }
        }
        if !progress && w.warehouse.is_quiescent() {
            break;
        }
    }
    let states = w
        .view_ids
        .iter()
        .map(|id| w.warehouse.view_states(*id).to_vec())
        .collect();
    let finals = w
        .view_ids
        .iter()
        .map(|id| w.warehouse.materialized(*id).clone())
        .collect();
    Ok(outcome_of(states, finals, &w.meters))
}

/// Thread-per-source: `pump_all` against one `Source::serve` thread per
/// site.
fn run_concurrent(case: EquivCase) -> Result<EquivOutcome, SimError> {
    let w = wire(case)?;
    let cw = w.warehouse.into_concurrent();
    let endpoints: Vec<(SourceId, Box<dyn Transport + Send>, u64)> = w
        .wh_ends
        .into_iter()
        .enumerate()
        .map(|(s, t)| {
            (
                SourceId(s),
                Box::new(t) as Box<dyn Transport + Send>,
                w.scripts[s].len() as u64,
            )
        })
        .collect();
    std::thread::scope(|scope| -> Result<(), SimError> {
        for ((mut source, mut src_end), script) in
            w.sources.into_iter().zip(w.src_ends).zip(&w.scripts)
        {
            scope.spawn(move || {
                source
                    .serve(&mut src_end, script)
                    .expect("equiv source serve failed");
            });
        }
        cw.pump_all(endpoints)?;
        Ok(())
    })?;
    let states = w.view_ids.iter().map(|id| cw.view_states(*id)).collect();
    let finals = w.view_ids.iter().map(|id| cw.materialized(*id)).collect();
    Ok(outcome_of(states, finals, &w.meters))
}

/// Reactor: the whole source fleet multiplexed on one thread against a
/// fixed worker pool.
fn run_reactor(case: EquivCase, workers: usize) -> Result<EquivOutcome, SimError> {
    let w = wire(case)?;
    let rw = w.warehouse.into_reactor(workers);
    let endpoints: Vec<(SourceId, Box<dyn Transport + Send>, u64)> = w
        .wh_ends
        .into_iter()
        .enumerate()
        .map(|(s, t)| {
            (
                SourceId(s),
                Box::new(t) as Box<dyn Transport + Send>,
                w.scripts[s].len() as u64,
            )
        })
        .collect();
    let mut members: Vec<FleetMember> = w
        .sources
        .into_iter()
        .zip(w.src_ends)
        .zip(w.scripts)
        .map(|((source, src_end), script)| FleetMember {
            source,
            transport: Box::new(src_end),
            script,
        })
        .collect();
    std::thread::scope(|scope| -> Result<(), SimError> {
        scope.spawn(move || {
            serve_fleet(&mut members).expect("equiv fleet serve failed");
        });
        rw.run(endpoints)?;
        Ok(())
    })?;
    let states = w.view_ids.iter().map(|id| rw.view_states(*id)).collect();
    let finals = w.view_ids.iter().map(|id| rw.materialized(*id)).collect();
    Ok(outcome_of(states, finals, &w.meters))
}

/// Reactor over real loopback TCP: the same fleet and worker pool as
/// `run_reactor`, but every link is a socket — sources dial a
/// [`eca_warehouse::ReactorWarehouse::run_listener`] endpoint, open with
/// the `Hello` handshake, and all warehouse-side readiness is
/// multiplexed by one [`Poller`] thread. Meters are read on the *source*
/// side of each link (the metering point every concurrent runtime
/// shares; the handshake frame travels outside it), so the outcome must
/// still be byte-identical to the in-memory runs — that is the
/// golden-trace claim `tests/golden_trace.rs` pins.
///
/// # Errors
/// Socket setup failures plus everything `run_reactor` can raise.
pub fn run_reactor_tcp(case: EquivCase, workers: usize) -> Result<EquivOutcome, SimError> {
    // `wire` builds SharedFifo links; here each link is a real socket,
    // so assemble the warehouse side by hand.
    let mut warehouse = Warehouse::new();
    let mut view_ids = Vec::new();
    let mut sources = Vec::new();
    let mut scripts = Vec::new();
    for (s, site) in case.sources.into_iter().enumerate() {
        let src = warehouse.add_source(format!("s{s}"));
        for maintainer in site.maintainers {
            view_ids.push(warehouse.add_view(src, maintainer)?);
        }
        sources.push(site.source);
        scripts.push(site.script);
    }
    let expected: Vec<u64> = scripts.iter().map(|s| s.len() as u64).collect();
    let rw = warehouse.into_reactor(workers);
    let io_err = |e: std::io::Error| SimError::Transport(TransportError::Io(e));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    let poller = Poller::new().map_err(io_err)?;
    let meters: Vec<TransferMeter> = (0..sources.len()).map(|_| TransferMeter::new()).collect();
    let mut members = Vec::with_capacity(sources.len());
    for ((s, source), script) in sources.into_iter().enumerate().zip(scripts) {
        // Dialing before the listener runs is fine: the connection waits
        // in the accept backlog until the reactor starts admitting.
        let transport = connect_source(addr, SourceId(s), meters[s].clone()).map_err(io_err)?;
        members.push(FleetMember {
            source,
            transport: Box::new(transport),
            script,
        });
    }
    std::thread::scope(|scope| -> Result<(), SimError> {
        scope.spawn(move || {
            serve_fleet(&mut members).expect("equiv TCP fleet serve failed");
        });
        rw.run_listener(listener, &poller, &expected)?;
        Ok(())
    })?;
    let states = view_ids.iter().map(|id| rw.view_states(*id)).collect();
    let finals = view_ids.iter().map(|id| rw.materialized(*id)).collect();
    Ok(outcome_of(states, finals, &meters))
}

/// Build the same deployment three times (via `build`) and run it under
/// all three runtimes. `workers` sizes the reactor pool.
///
/// # Errors
/// The first runtime failure, in serial → concurrent → reactor order.
pub fn run_equivalence(
    build: &dyn Fn() -> EquivCase,
    workers: usize,
) -> Result<EquivTriple, SimError> {
    Ok(EquivTriple {
        serial: run_serial(build())?,
        concurrent: run_concurrent(build())?,
        reactor: run_reactor(build(), workers)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::algorithms::AlgorithmKind;
    use eca_core::ViewDef;
    use eca_relational::{Predicate, Schema, Tuple};
    use eca_storage::Scenario;

    fn two_site_case() -> EquivCase {
        let mut sources = Vec::new();
        for s in 0..2usize {
            let (r1, r2) = (format!("r{s}_1"), format!("r{s}_2"));
            let view = ViewDef::new(
                format!("V{s}"),
                vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])],
                Predicate::col_eq(1, 2),
                vec![0],
            )
            .unwrap();
            let mut source = Source::new(Scenario::Indexed);
            source
                .add_relation(Schema::new(&r1, &["W", "X"]), 20, Some("X"), &[])
                .unwrap();
            source
                .add_relation(Schema::new(&r2, &["X", "Y"]), 20, Some("X"), &[])
                .unwrap();
            source.load(&r1, [Tuple::ints([1, 2])]).unwrap();
            let initial = view.eval(&source.snapshot()).unwrap();
            let maintainer = AlgorithmKind::Eca.instantiate(&view, initial).unwrap();
            sources.push(EquivSource {
                source,
                script: vec![
                    Update::insert(&r2, Tuple::ints([2, 3])),
                    Update::insert(&r1, Tuple::ints([4, 2])),
                ],
                maintainers: vec![maintainer],
            });
        }
        EquivCase { sources }
    }

    #[test]
    fn three_runtimes_agree_on_a_two_site_deployment() {
        let triple = run_equivalence(&two_site_case, 2).unwrap();
        assert_eq!(triple.serial, triple.concurrent);
        assert_eq!(triple.serial, triple.reactor);
        assert!(triple.agree());
        // And the run actually did something.
        assert!(triple.serial.meters[0].answer_bytes > 0);
        assert!(triple.serial.view_states[0].len() > 1);
    }

    /// Swapping the reactor's in-memory links for real loopback sockets
    /// (listener handshake, poller readiness, framed TCP) must not
    /// change a single observable — states, finals, or per-link meters.
    #[test]
    fn tcp_reactor_matches_in_memory_runtimes() {
        let serial = run_serial(two_site_case()).unwrap();
        let tcp = run_reactor_tcp(two_site_case(), 2).unwrap();
        assert_eq!(serial, tcp);
    }
}
