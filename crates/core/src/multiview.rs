//! A warehouse hosting several materialized views (paper §7: *"in a
//! warehouse consisting of multiple views where each view is over data
//! from a single source, ECA is simply applied to each view
//! separately"*).
//!
//! [`MultiView`] routes each update notification to every hosted
//! maintainer whose view involves the updated relation, and demultiplexes
//! answers back to the owning maintainer. Query ids are remapped to a
//! warehouse-global space so that independent maintainers (each with its
//! own id counter) can share one channel to the source.

use std::collections::BTreeMap;

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};

/// A set of independently maintained views sharing one source channel.
#[derive(Default)]
pub struct MultiView {
    maintainers: Vec<Box<dyn ViewMaintainer>>,
    ids: QueryIdGen,
    /// Global query id → (maintainer index, maintainer-local id).
    routing: BTreeMap<QueryId, (usize, QueryId)>,
}

impl MultiView {
    /// An empty warehouse.
    pub fn new() -> Self {
        MultiView {
            maintainers: Vec::new(),
            ids: QueryIdGen::new(),
            routing: BTreeMap::new(),
        }
    }

    /// Host another view. Returns its index for later inspection.
    pub fn add(&mut self, maintainer: Box<dyn ViewMaintainer>) -> usize {
        self.maintainers.push(maintainer);
        self.maintainers.len() - 1
    }

    /// Number of hosted views.
    pub fn len(&self) -> usize {
        self.maintainers.len()
    }

    /// Whether no views are hosted.
    pub fn is_empty(&self) -> bool {
        self.maintainers.is_empty()
    }

    /// The maintainer at `index`.
    pub fn maintainer(&self, index: usize) -> &dyn ViewMaintainer {
        self.maintainers[index].as_ref()
    }

    /// The materialized view at `index`.
    pub fn materialized(&self, index: usize) -> &SignedBag {
        self.maintainers[index].materialized()
    }

    /// Route an update to every involved view. Emitted queries carry
    /// warehouse-global ids.
    ///
    /// # Errors
    /// Propagates the first maintainer error.
    pub fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        let mut out = Vec::new();
        for (idx, m) in self.maintainers.iter_mut().enumerate() {
            for q in m.on_update(update)? {
                let global = self.ids.fresh();
                self.routing.insert(global, (idx, q.id));
                out.push(OutboundQuery {
                    id: global,
                    query: q.query,
                });
            }
        }
        Ok(out)
    }

    /// Deliver an answer to the owning view.
    ///
    /// # Errors
    /// [`CoreError::UnknownQuery`] for unrouted ids.
    pub fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        let (idx, local) = self
            .routing
            .remove(&id)
            .ok_or(CoreError::UnknownQuery { id: id.0 })?;
        let mut out = Vec::new();
        for q in self.maintainers[idx].on_answer(local, answer)? {
            let global = self.ids.fresh();
            self.routing.insert(global, (idx, q.id));
            out.push(OutboundQuery {
                id: global,
                query: q.query,
            });
        }
        Ok(out)
    }

    /// Whether every hosted view is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.maintainers.iter().all(|m| m.is_quiescent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::basedb::BaseDb;
    use crate::view::ViewDef;
    use eca_relational::{Predicate, Schema, Tuple};

    /// Two views sharing r2: V1 = π_W(r1 ⋈ r2), V2 = π_Y(r2 ⋈ r3).
    fn two_views() -> (ViewDef, ViewDef) {
        let v1 = ViewDef::new(
            "V1",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let v2 = ViewDef::new(
            "V2",
            vec![
                Schema::new("r2", &["X", "Y"]),
                Schema::new("r3", &["Y", "Z"]),
            ],
            Predicate::col_eq(1, 2),
            vec![1],
        )
        .unwrap();
        (v1, v2)
    }

    fn shared_db(v1: &ViewDef, v2: &ViewDef) -> BaseDb {
        let mut db = BaseDb::new();
        for v in [v1, v2] {
            for s in v.base() {
                db.register(s.relation());
            }
        }
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 7]));
        db.insert("r3", Tuple::ints([7, 9]));
        db
    }

    /// Drive updates and answer all emitted queries on the final state
    /// (the adversarial interleaving), then check both views.
    #[test]
    fn shared_relation_updates_fan_out() {
        let (v1, v2) = two_views();
        let mut db = shared_db(&v1, &v2);
        let mut hub = MultiView::new();
        hub.add(
            AlgorithmKind::Eca
                .instantiate(&v1, v1.eval(&db).unwrap())
                .unwrap(),
        );
        hub.add(
            AlgorithmKind::Eca
                .instantiate(&v2, v2.eval(&db).unwrap())
                .unwrap(),
        );
        assert_eq!(hub.len(), 2);

        let updates = [
            Update::insert("r2", Tuple::ints([2, 8])), // involves both views
            Update::insert("r1", Tuple::ints([4, 2])), // only V1
            Update::insert("r3", Tuple::ints([8, 5])), // only V2
        ];
        let mut queries = Vec::new();
        for u in &updates {
            db.apply(u);
            queries.extend(hub.on_update(u).unwrap());
        }
        // r2 update fans out to both views; the others hit one each.
        assert_eq!(queries.len(), 4);

        for q in &queries {
            hub.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert!(hub.is_quiescent());
        assert_eq!(*hub.materialized(0), v1.eval(&db).unwrap());
        assert_eq!(*hub.materialized(1), v2.eval(&db).unwrap());
    }

    /// Different algorithms can coexist per view.
    #[test]
    fn mixed_algorithms_per_view() {
        let (v1, v2) = two_views();
        let mut db = shared_db(&v1, &v2);
        let mut hub = MultiView::new();
        hub.add(
            AlgorithmKind::Eca
                .instantiate(&v1, v1.eval(&db).unwrap())
                .unwrap(),
        );
        hub.add(
            AlgorithmKind::StoreCopies
                .instantiate_with_base(&v2, v2.eval(&db).unwrap(), Some(db.clone()))
                .unwrap(),
        );

        let u = Update::insert("r2", Tuple::ints([2, 9]));
        db.apply(&u);
        let queries = hub.on_update(&u).unwrap();
        // SC answers locally; only ECA queries the source.
        assert_eq!(queries.len(), 1);
        assert_eq!(
            *hub.materialized(1),
            v2.eval(&db).unwrap(),
            "SC is already current"
        );
        for q in &queries {
            hub.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert_eq!(*hub.materialized(0), v1.eval(&db).unwrap());
    }

    #[test]
    fn global_ids_do_not_collide() {
        let (v1, v2) = two_views();
        let db = shared_db(&v1, &v2);
        let mut hub = MultiView::new();
        hub.add(
            AlgorithmKind::Eca
                .instantiate(&v1, v1.eval(&db).unwrap())
                .unwrap(),
        );
        hub.add(
            AlgorithmKind::Eca
                .instantiate(&v2, v2.eval(&db).unwrap())
                .unwrap(),
        );

        // Both inner maintainers will locally use Q1 for their first
        // query; globally the ids must differ.
        let qs = hub
            .on_update(&Update::insert("r2", Tuple::ints([2, 3])))
            .unwrap();
        assert_eq!(qs.len(), 2);
        assert_ne!(qs[0].id, qs[1].id);
    }

    #[test]
    fn unknown_answer_rejected() {
        let mut hub = MultiView::new();
        assert!(hub.is_empty());
        assert!(matches!(
            hub.on_answer(QueryId(5), SignedBag::new()),
            Err(CoreError::UnknownQuery { .. })
        ));
    }
}
