//! Error types for the view-maintenance layer.

use std::fmt;

use eca_relational::RelationalError;

/// Errors raised while defining views or running maintenance algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A relational-layer error bubbled up.
    Relational(RelationalError),
    /// The view definition referenced the same base relation twice. The
    /// paper (§4) assumes distinct relations; multiple occurrences would
    /// need per-occurrence update handling.
    DuplicateBaseRelation {
        /// The repeated relation name.
        relation: String,
    },
    /// A view required by an algorithm to be fully keyed (ECA-Key) is not.
    ViewNotKeyed {
        /// The view name.
        view: String,
    },
    /// An update referenced a relation that is not part of the view.
    UnknownRelation {
        /// The unknown relation name.
        relation: String,
    },
    /// An answer arrived for a query id that is not pending.
    UnknownQuery {
        /// The offending query id.
        id: u64,
    },
    /// The recompute period `s` for the RV algorithm must be at least 1.
    InvalidRecomputePeriod {
        /// The supplied period.
        period: u64,
    },
    /// The algorithm cannot atomically adopt an externally recomputed
    /// view state (RV-style resync): it maintains auxiliary state that a
    /// bare `V(ss)` answer cannot restore.
    ResyncUnsupported {
        /// The algorithm's name.
        algorithm: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relational(e) => write!(f, "{e}"),
            CoreError::DuplicateBaseRelation { relation } => {
                write!(
                    f,
                    "base relation {relation:?} occurs more than once in the view"
                )
            }
            CoreError::ViewNotKeyed { view } => write!(
                f,
                "view {view:?} does not contain a key of every base relation (required by ECA-Key)"
            ),
            CoreError::UnknownRelation { relation } => {
                write!(f, "relation {relation:?} is not part of the view")
            }
            CoreError::UnknownQuery { id } => write!(f, "no pending query with id {id}"),
            CoreError::InvalidRecomputePeriod { period } => {
                write!(f, "recompute period must be >= 1, got {period}")
            }
            CoreError::ResyncUnsupported { algorithm } => {
                write!(
                    f,
                    "algorithm {algorithm} does not support full-state resync"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for CoreError {
    fn from(e: RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_relational_errors() {
        let e: CoreError = RelationalError::MissingKey {
            relation: "r".into(),
        }
        .into();
        assert!(matches!(e, CoreError::Relational(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display() {
        let e = CoreError::UnknownQuery { id: 7 };
        assert!(e.to_string().contains('7'));
    }
}
