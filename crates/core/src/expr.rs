//! Query expressions (paper §4.2).
//!
//! A **term** is `π_proj(σ_cond(~r1 × ~r2 × … × ~rn))` where each `~ri` is
//! either the base relation `ri` or a bound (signed) updated tuple of `ri`.
//! A **query** is a sum of terms; the ECA compensating queries subtract
//! terms, which we represent with a per-term integer `factor` (±1, and more
//! general coefficients compose soundly).
//!
//! The substitution `Q⟨U⟩` replaces `U`'s relation by `U`'s signed tuple in
//! every term; a term that already binds that relation vanishes
//! (`Q⟨U1,…,Uk⟩ = ∅` when two updates hit the same relation — paper §4.2).

use std::fmt;

use eca_relational::algebra::spj;
use eca_relational::{RelationalError, SignedBag, SignedTuple, Tuple, Update};

use crate::basedb::BaseLookup;
use crate::view::ViewDef;

/// Identifier of an in-flight warehouse query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// One slot of a term: the base relation itself, or a bound updated tuple.
#[derive(Clone, PartialEq, Eq)]
pub enum Atom {
    /// The base relation at this index of the view's relation list.
    Rel(usize),
    /// A bound signed tuple substituted for the relation.
    Bound(SignedTuple),
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Rel(i) => write!(f, "r{}", i + 1),
            Atom::Bound(st) => write!(f, "{st:?}"),
        }
    }
}

/// A single SPJ term with an integer coefficient.
///
/// The `owner` tags which update's delta this term contributes to — used by
/// the Lazy Compensating Algorithm; plain ECA ignores it.
#[derive(Clone, PartialEq, Eq)]
pub struct Term {
    factor: i64,
    atoms: Vec<Atom>,
    owner: Option<u64>,
}

impl Term {
    /// Build a term with the given coefficient and atoms.
    pub fn new(factor: i64, atoms: Vec<Atom>) -> Self {
        Term {
            factor,
            atoms,
            owner: None,
        }
    }

    /// Build a term owned by update sequence number `owner` (LCA).
    pub fn owned(factor: i64, atoms: Vec<Atom>, owner: u64) -> Self {
        Term {
            factor,
            atoms,
            owner: Some(owner),
        }
    }

    /// The coefficient (±1 in the paper's algorithms).
    pub fn factor(&self) -> i64 {
        self.factor
    }

    /// The atoms in relation order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The owning update sequence number, if tagged.
    pub fn owner(&self) -> Option<u64> {
        self.owner
    }

    /// Number of atoms still referring to base relations (unbound).
    pub fn unbound_count(&self) -> usize {
        self.atoms
            .iter()
            .filter(|a| matches!(a, Atom::Rel(_)))
            .count()
    }

    /// `T⟨U⟩`: substitute `U`'s signed tuple for its relation. Returns
    /// `None` (the empty query) when every occurrence of the relation is
    /// already bound in this term, or the relation does not occur at all.
    ///
    /// When the view references `U`'s relation exactly once (the paper's
    /// standing assumption in §4), this is the paper's substitution
    /// verbatim. Views with **multiple occurrences** of a relation
    /// (self-joins — the extension §4 sketches) are handled through
    /// [`Term::substitute_all_occurrences`]; this method then returns the
    /// first-occurrence binding only and is kept for single-occurrence
    /// callers.
    pub fn substitute(&self, view: &ViewDef, update: &Update) -> Option<Term> {
        self.substitute_all_occurrences(view, update)
            .into_iter()
            .next()
    }

    /// Full multi-occurrence substitution by inclusion–exclusion.
    ///
    /// Let `O` be the unbound occurrences of `U`'s relation in this term
    /// and `Δ` the signed updated tuple. Multilinearity of the cross
    /// product in each slot gives
    ///
    /// ```text
    /// T[ss_{j-1}] = T[ss_j] − Σ_{∅≠S⊆O} (−1)^{|S|+1} · T[Δ at S][ss_j]
    /// ```
    ///
    /// so `T⟨U⟩ := Σ_{∅≠S⊆O} (−1)^{|S|+1} T[Δ@S]` preserves Lemma B.2 —
    /// the identity all the compensation proofs rest on. For `|O| = 1`
    /// this degenerates to the paper's single-term substitution.
    pub fn substitute_all_occurrences(&self, view: &ViewDef, update: &Update) -> Vec<Term> {
        let occurrences: Vec<usize> = (0..self.atoms.len())
            .filter(|&i| {
                view.base()[i].relation() == update.relation
                    && matches!(self.atoms[i], Atom::Rel(_))
            })
            .collect();
        if occurrences.is_empty() {
            return Vec::new();
        }
        let st = update.signed_tuple();
        let mut out = Vec::with_capacity((1usize << occurrences.len()) - 1);
        // Enumerate non-empty subsets S of the occurrences.
        for mask in 1u32..(1u32 << occurrences.len()) {
            let mut atoms = self.atoms.clone();
            let mut size = 0u32;
            for (bit, &pos) in occurrences.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    atoms[pos] = Atom::Bound(st.clone());
                    size += 1;
                }
            }
            // (−1)^{|S|+1}: + for odd |S|, − for even.
            let sign = if size % 2 == 1 { 1 } else { -1 };
            out.push(Term {
                factor: self.factor * sign,
                atoms,
                owner: self.owner,
            });
        }
        out
    }

    /// A copy with the coefficient negated.
    #[must_use]
    pub fn negated(&self) -> Term {
        Term {
            factor: -self.factor,
            atoms: self.atoms.clone(),
            owner: self.owner,
        }
    }

    /// A copy re-tagged with `owner`.
    #[must_use]
    pub fn with_owner(&self, owner: u64) -> Term {
        Term {
            factor: self.factor,
            atoms: self.atoms.clone(),
            owner: Some(owner),
        }
    }

    /// Evaluate this term against base relation contents, including the
    /// coefficient.
    ///
    /// # Errors
    /// Propagates relational evaluation errors.
    pub fn eval(&self, view: &ViewDef, db: &impl BaseLookup) -> Result<SignedBag, RelationalError> {
        let mut singletons: Vec<SignedBag> = Vec::new();
        // Pre-materialize bound singletons so we can borrow uniformly.
        for atom in &self.atoms {
            if let Atom::Bound(st) = atom {
                let mut bag = SignedBag::new();
                bag.add(st.tuple.clone(), st.sign.factor());
                singletons.push(bag);
            }
        }
        let empty = SignedBag::new();
        let mut inputs: Vec<&SignedBag> = Vec::with_capacity(self.atoms.len());
        let mut si = 0usize;
        for (i, atom) in self.atoms.iter().enumerate() {
            match atom {
                Atom::Rel(_) => {
                    let name = view.base()[i].relation();
                    inputs.push(db.bag(name).unwrap_or(&empty));
                }
                Atom::Bound(_) => {
                    inputs.push(&singletons[si]);
                    si += 1;
                }
            }
        }
        let result = spj(&inputs, view.cond(), view.proj())?;
        Ok(scale(&result, self.factor))
    }

    /// Encoded payload size of this term under the wire codec: 1 byte
    /// factor sign, then per atom either a 1-byte relation tag or the
    /// signed-tuple encoding.
    pub fn encoded_len(&self) -> usize {
        1 + self
            .atoms
            .iter()
            .map(|a| match a {
                Atom::Rel(_) => 1,
                Atom::Bound(st) => 2 + st.tuple.encoded_len(),
            })
            .sum::<usize>()
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factor != 1 {
            write!(f, "{}*", self.factor)?;
        }
        write!(f, "pi(sigma(")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, "))")
    }
}

/// Scale every count of `bag` by `factor`.
fn scale(bag: &SignedBag, factor: i64) -> SignedBag {
    match factor {
        1 => bag.clone(),
        -1 => bag.negated(),
        0 => SignedBag::new(),
        f => {
            let mut out = SignedBag::new();
            for (t, c) in bag.iter() {
                out.add(t.clone(), c * f);
            }
            out
        }
    }
}

/// A query: a sum of terms over a view's relations (paper Eq. 4.2).
#[derive(Clone, PartialEq, Eq)]
pub struct Query {
    view: ViewDef,
    terms: Vec<Term>,
}

impl Query {
    /// Build a query from terms.
    pub fn from_terms(view: ViewDef, terms: Vec<Term>) -> Self {
        Query { view, terms }
    }

    /// The view the query maintains.
    pub fn view(&self) -> &ViewDef {
        &self.view
    }

    /// The terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Whether the query has no terms (evaluates to ∅ trivially).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Q⟨U⟩`: substitute into every term, dropping vanished ones. Views
    /// with repeated relations expand each term by inclusion–exclusion.
    #[must_use]
    pub fn substitute(&self, update: &Update) -> Query {
        Query {
            view: self.view.clone(),
            terms: self
                .terms
                .iter()
                .flat_map(|t| t.substitute_all_occurrences(&self.view, update))
                .collect(),
        }
    }

    /// `Q⟨U1,…,Uk⟩` applied left to right.
    #[must_use]
    pub fn substitute_all(&self, updates: &[Update]) -> Query {
        updates.iter().fold(self.clone(), |q, u| q.substitute(u))
    }

    /// Append `other`'s terms negated (the paper's `Q − Q'`).
    #[must_use]
    pub fn minus(&self, other: &Query) -> Query {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().map(Term::negated));
        Query {
            view: self.view.clone(),
            terms,
        }
    }

    /// Evaluate against base relation contents: the signed sum of all term
    /// results.
    ///
    /// # Errors
    /// Propagates relational evaluation errors.
    pub fn eval(&self, db: &impl BaseLookup) -> Result<SignedBag, RelationalError> {
        let mut out = SignedBag::new();
        for term in &self.terms {
            out.merge(&term.eval(&self.view, db)?);
        }
        Ok(out)
    }

    /// Evaluate terms concurrently, one worker thread per term, and merge
    /// the signed sum. Answers equal [`Query::eval`] exactly: merging
    /// signed bags is commutative and associative, so term completion
    /// order cannot change the result.
    ///
    /// # Errors
    /// Propagates relational evaluation errors (the first failing term in
    /// term order).
    pub fn eval_parallel(
        &self,
        db: &(impl BaseLookup + Sync),
    ) -> Result<SignedBag, RelationalError> {
        if self.terms.len() <= 1 {
            return self.eval(db);
        }
        let results: Vec<Result<SignedBag, RelationalError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .terms
                .iter()
                .map(|term| scope.spawn(|| term.eval(&self.view, db)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("term evaluation thread panicked"))
                .collect()
        });
        let mut out = SignedBag::new();
        for r in results {
            out.merge(&r?);
        }
        Ok(out)
    }

    /// Encoded payload size under the wire codec: 2-byte term count plus
    /// term encodings.
    pub fn encoded_len(&self) -> usize {
        2 + self.terms.iter().map(Term::encoded_len).sum::<usize>()
    }

    /// Split into one single-term query per term (LCA sends terms
    /// individually so answers can be routed to their owning update).
    pub fn split_terms(&self) -> Vec<Query> {
        self.terms
            .iter()
            .map(|t| Query {
                view: self.view.clone(),
                terms: vec![t.clone()],
            })
            .collect()
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "EMPTY");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{t:?}")?;
        }
        Ok(())
    }
}

/// Convenience: evaluate `V⟨U⟩` semantics for tuples already at hand — used
/// by Store-Copies and by tests. Equivalent to
/// `view.substitute(update)?.eval(db)`.
///
/// # Errors
/// Propagates substitution and evaluation errors.
pub fn update_delta(
    view: &ViewDef,
    update: &Update,
    db: &impl BaseLookup,
) -> Result<SignedBag, crate::error::CoreError> {
    Ok(view.substitute(update)?.eval(db)?)
}

/// Helper for constructing single-tuple test bags.
pub fn singleton_bag(tuple: Tuple) -> SignedBag {
    SignedBag::singleton(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn substitution_binds_and_vanishes() {
        let v = view2();
        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let q1 = v.substitute(&u1).unwrap();
        // Q1⟨U⟩ for another r2 update must vanish (same relation bound).
        let u2 = Update::insert("r2", Tuple::ints([9, 9]));
        assert!(q1.substitute(&u2).is_empty());
        // But an r1 update binds the remaining atom.
        let u3 = Update::insert("r1", Tuple::ints([4, 2]));
        let q13 = q1.substitute(&u3);
        assert_eq!(q13.terms().len(), 1);
        assert_eq!(q13.terms()[0].unbound_count(), 0);
    }

    #[test]
    fn substitute_all_same_relation_twice_is_empty() {
        let v = view2();
        let q = v.as_query();
        let us = [
            Update::insert("r1", Tuple::ints([1, 1])),
            Update::insert("r1", Tuple::ints([2, 2])),
        ];
        assert!(q.substitute_all(&us).is_empty());
    }

    #[test]
    fn eval_example_2_q1_sees_anomalous_state() {
        // Paper Example 2 step 5: Q1 = π_W(r1 ⋈ [2,3]) evaluated on
        // r1 = ([1,2],[4,2]) yields ([1],[4]).
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r1", Tuple::ints([4, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let q1 = v
            .substitute(&Update::insert("r2", Tuple::ints([2, 3])))
            .unwrap();
        let a1 = q1.eval(&db).unwrap();
        assert_eq!(
            a1,
            SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])])
        );
    }

    #[test]
    fn deletion_substitution_carries_minus_sign() {
        // Example 8: Q1 = π_W((−[4,2]) ⋈ r2); with r2 = ([2,3]) the answer
        // is −[4].
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r2", Tuple::ints([2, 3]));
        let q = v
            .substitute(&Update::delete("r1", Tuple::ints([4, 2])))
            .unwrap();
        let a = q.eval(&db).unwrap();
        assert_eq!(a.count(&Tuple::ints([4])), -1);
    }

    #[test]
    fn minus_appends_negated_terms() {
        let v = view2();
        let q1 = v
            .substitute(&Update::insert("r2", Tuple::ints([2, 3])))
            .unwrap();
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        let q2 = v.substitute(&u2).unwrap().minus(&q1.substitute(&u2));
        assert_eq!(q2.terms().len(), 2);
        assert_eq!(q2.terms()[0].factor(), 1);
        assert_eq!(q2.terms()[1].factor(), -1);
    }

    #[test]
    fn compensated_query_evaluates_like_paper_example_2() {
        // Step 7-8 of the ECA walk-through in §1.2: with compensation the
        // A2 answer is empty.
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r1", Tuple::ints([4, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        let q1 = v.substitute(&u1).unwrap();
        let q2 = v.substitute(&u2).unwrap().minus(&q1.substitute(&u2));
        let a2 = q2.eval(&db).unwrap();
        assert!(
            a2.is_empty(),
            "compensation should cancel the anomaly, got {a2:?}"
        );
    }

    #[test]
    fn lemma_b2_property() {
        // Q[ss_{j-1}] = Q[ss_j] − Q⟨U_j⟩[ss_j] for insertions and deletions.
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 4]));
        let q = v.as_query();

        for u in [
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::delete("r1", Tuple::ints([1, 2])),
            Update::insert("r2", Tuple::ints([2, 9])),
        ] {
            let before = q.eval(&db).unwrap();
            let mut db2 = db.clone();
            db2.apply(&u);
            let after = q.eval(&db2).unwrap();
            let comp = q.substitute(&u).eval(&db2).unwrap();
            assert_eq!(before, after.minus(&comp), "Lemma B.2 failed for {u:?}");
        }
    }

    #[test]
    fn split_terms_preserves_sum() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([1, 2]));
        let q = v
            .substitute(&u2)
            .unwrap()
            .minus(&v.substitute(&u1).unwrap().substitute(&u2));
        let whole = q.eval(&db).unwrap();
        let mut sum = SignedBag::new();
        for part in q.split_terms() {
            sum.merge(&part.eval(&db).unwrap());
        }
        assert_eq!(whole, sum);
    }

    #[test]
    fn parallel_eval_matches_sequential() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        for i in 0..20i64 {
            db.insert("r1", Tuple::ints([i, i % 4]));
            db.insert("r2", Tuple::ints([i % 4, i]));
        }
        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        let u3 = Update::delete("r1", Tuple::ints([1, 2]));
        let q1 = v.substitute(&u1).unwrap();
        let q2 = v.substitute(&u2).unwrap().minus(&q1.substitute(&u2));
        let q3 = v
            .substitute(&u3)
            .unwrap()
            .minus(&q1.substitute(&u3))
            .minus(&q2.substitute(&u3));
        for q in [&v.as_query(), &q1, &q2, &q3] {
            assert_eq!(q.eval_parallel(&db).unwrap(), q.eval(&db).unwrap());
        }
    }

    #[test]
    fn owner_tags_propagate_through_substitution() {
        let v = view2();
        let base = Term::owned(1, vec![Atom::Rel(0), Atom::Rel(1)], 3);
        let u = Update::insert("r1", Tuple::ints([4, 2]));
        let sub = base.substitute(&v, &u).unwrap();
        assert_eq!(sub.owner(), Some(3));
        assert_eq!(sub.negated().owner(), Some(3));
        assert_eq!(base.with_owner(9).owner(), Some(9));
    }

    #[test]
    fn encoded_len_grows_with_bound_tuples() {
        let v = view2();
        let free = v.as_query();
        let bound = v
            .substitute(&Update::insert("r1", Tuple::ints([4, 2])))
            .unwrap();
        assert!(bound.encoded_len() > free.encoded_len());
    }

    #[test]
    fn debug_formats() {
        let v = view2();
        let q = v
            .substitute(&Update::delete("r1", Tuple::ints([4, 2])))
            .unwrap();
        let s = format!("{q:?}");
        assert!(s.contains("-[4,2]"), "{s}");
        assert_eq!(format!("{}", QueryId(3)), "Q3");
    }
}
