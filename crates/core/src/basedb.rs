//! An in-memory base-relation store.
//!
//! [`BaseDb`] is the *logical* reference implementation of a source's data:
//! a map from relation name to signed-bag contents. It is used by
//!
//! * unit tests throughout the workspace,
//! * the Store-Copies strategy (the warehouse's local replicas, §1.2),
//! * differential tests that check the physical storage engine
//!   (`eca-storage`) returns identical answers.
//!
//! The physical, I/O-metered source lives in `eca-source`.

use std::collections::BTreeMap;

use eca_relational::{SignedBag, Tuple, Update, UpdateKind};

use crate::view::ViewDef;

/// Read access to base relation contents by name. Implemented by
/// [`BaseDb`] and by the physical engine in `eca-source`.
pub trait BaseLookup {
    /// The current contents of the named relation, or `None` if unknown.
    fn bag(&self, name: &str) -> Option<&SignedBag>;
}

/// A simple named collection of base relations.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BaseDb {
    rels: BTreeMap<String, SignedBag>,
}

impl BaseDb {
    /// An empty store with no relations registered.
    pub fn new() -> Self {
        BaseDb::default()
    }

    /// Create a store with one empty relation per base relation of `view`.
    pub fn for_view(view: &ViewDef) -> Self {
        let mut db = BaseDb::new();
        for s in view.base() {
            db.rels.insert(s.relation().to_owned(), SignedBag::new());
        }
        db
    }

    /// Register an (empty) relation.
    pub fn register(&mut self, name: impl Into<String>) {
        self.rels.entry(name.into()).or_default();
    }

    /// Relation names in deterministic order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.rels.keys().map(String::as_str)
    }

    /// Insert one copy of `tuple` into `relation` (auto-registers).
    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        self.rels
            .entry(relation.to_owned())
            .or_default()
            .add(tuple, 1);
    }

    /// Apply an update. Returns `false` when a deletion found no copy to
    /// remove (the update was ineffective).
    pub fn apply(&mut self, update: &Update) -> bool {
        let bag = self.rels.entry(update.relation.clone()).or_default();
        match update.kind {
            UpdateKind::Insert => {
                bag.add(update.tuple.clone(), 1);
                true
            }
            UpdateKind::Delete => {
                if bag.count(&update.tuple) > 0 {
                    bag.add(update.tuple.clone(), -1);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Apply a sequence of updates.
    pub fn apply_all<'a>(&mut self, updates: impl IntoIterator<Item = &'a Update>) {
        for u in updates {
            self.apply(u);
        }
    }

    /// Total number of tuple occurrences across all relations.
    pub fn total_cardinality(&self) -> u64 {
        self.rels.values().map(SignedBag::pos_len).sum()
    }
}

impl BaseLookup for BaseDb {
    fn bag(&self, name: &str) -> Option<&SignedBag> {
        self.rels.get(name)
    }
}

impl std::fmt::Debug for BaseDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for (k, v) in &self.rels {
            m.entry(k, v);
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut db = BaseDb::new();
        db.insert("r1", Tuple::ints([1, 2]));
        assert_eq!(db.bag("r1").unwrap().count(&Tuple::ints([1, 2])), 1);
        assert!(db.bag("nope").is_none());
    }

    #[test]
    fn apply_updates() {
        let mut db = BaseDb::new();
        assert!(db.apply(&Update::insert("r", Tuple::ints([1]))));
        assert!(db.apply(&Update::delete("r", Tuple::ints([1]))));
        // Deleting again is ineffective.
        assert!(!db.apply(&Update::delete("r", Tuple::ints([1]))));
        assert!(db.bag("r").unwrap().is_empty());
    }

    #[test]
    fn apply_all_and_cardinality() {
        let mut db = BaseDb::new();
        let us = vec![
            Update::insert("a", Tuple::ints([1])),
            Update::insert("a", Tuple::ints([1])),
            Update::insert("b", Tuple::ints([2])),
        ];
        db.apply_all(&us);
        assert_eq!(db.total_cardinality(), 3);
    }

    #[test]
    fn registered_relations_listed() {
        let mut db = BaseDb::new();
        db.register("z");
        db.register("a");
        let names: Vec<_> = db.relation_names().collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
