//! The common interface of all warehouse view-maintenance algorithms.
//!
//! The warehouse side of every algorithm is a state machine reacting to two
//! stimuli (paper §3's `W_up` and `W_ans` events):
//!
//! * an update notification arriving from the source, and
//! * an answer relation arriving for a previously sent query.
//!
//! Each reaction may emit queries to be sent to the source. Transport and
//! interleaving are supplied externally (by `eca-sim` or by a test
//! harness), which is exactly the decoupling the paper studies.

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::{Query, QueryId};
use crate::view::ViewDef;

/// A query the warehouse wants evaluated at the source.
#[derive(Clone, Debug)]
pub struct OutboundQuery {
    /// Correlation id: the answer must be delivered with this id.
    pub id: QueryId,
    /// The query expression.
    pub query: Query,
}

/// A warehouse view-maintenance algorithm.
///
/// Implementations must be driven with in-order delivery: `on_update` calls
/// follow the source's update order, and `on_answer` calls follow the order
/// in which queries were emitted (FIFO channels, paper §3's message
/// ordering assumption).
///
/// `Send` is a supertrait so maintainers can migrate into the per-source
/// pump threads of the concurrent warehouse runtime; all implementations
/// are plain owned data, so this costs nothing.
pub trait ViewMaintainer: Send {
    /// Short algorithm name for traces and reports (e.g. `"ECA"`).
    fn algorithm(&self) -> &'static str;

    /// The maintained view definition.
    fn view(&self) -> &ViewDef;

    /// The current materialized view `MV`.
    fn materialized(&self) -> &SignedBag;

    /// React to an update notification (a `W_up` event). Returns queries
    /// to send to the source, in order.
    ///
    /// # Errors
    /// Implementation-specific validation errors.
    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError>;

    /// React to a query answer (a `W_ans` event). Returns follow-up
    /// queries (none, for the paper's algorithms).
    ///
    /// # Errors
    /// [`CoreError::UnknownQuery`] when `id` is not pending.
    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError>;

    /// Whether no queries are outstanding (`UQS = ∅`) and all received
    /// information has been applied to `MV`.
    fn is_quiescent(&self) -> bool;

    /// Distinct states `MV` passed through during the *last* `on_update`/
    /// `on_answer` call, in order, when more than one delta was applied
    /// inside a single event (the Lazy Compensating Algorithm can close
    /// several buffered per-update deltas on one answer). The default —
    /// an empty vector — means "only the current [`materialized`] state".
    /// Harnesses recording state histories must consume this after every
    /// event or intermediate states are lost.
    ///
    /// [`materialized`]: ViewMaintainer::materialized
    fn drain_intermediate_states(&mut self) -> Vec<SignedBag> {
        Vec::new()
    }

    /// Atomically replace all algorithm state with a freshly recomputed
    /// view state `V(ss)` — the warehouse's RV-style resync (paper
    /// Alg. D.1) after an unrecoverable channel fault. Implementations
    /// must install `state` as `MV` and clear every pending structure
    /// (UQS, COLLECT, buffered deltas), leaving the maintainer quiescent
    /// and ready to resume incremental processing from `ss`.
    ///
    /// The default refuses: algorithms carrying auxiliary state that a
    /// bare `V(ss)` answer cannot restore (e.g. base-relation replicas)
    /// must not silently pretend to have resynced.
    ///
    /// # Errors
    /// [`CoreError::ResyncUnsupported`] from the default implementation.
    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        let _ = state;
        Err(CoreError::ResyncUnsupported {
            algorithm: self.algorithm(),
        })
    }

    /// Whether a pending compensating query of this algorithm may be
    /// re-issued (same expression, new id) after a channel reset and
    /// still yield a correct view.
    ///
    /// True for the compensating family: an ECA query stays in `UQS`
    /// while pending, so every intervening update subtracts its effect
    /// from the re-issued query's answer no matter how late it is
    /// evaluated (§4's compensation argument does not depend on *when*
    /// the source evaluates the query). False for algorithms with no
    /// compensation machinery — re-evaluating their queries against a
    /// later source state reintroduces exactly the anomalies of §4.1, so
    /// recovery must go straight to a resync.
    fn reissue_safe(&self) -> bool {
        true
    }

    /// Self-maintenance statistics, for algorithms that answer
    /// compensating queries against warehouse-resident auxiliary views
    /// (`EcaAux`). `None` — the default — means the algorithm has no
    /// self-maintenance machinery; harnesses use this to report
    /// local-answer rates and auxiliary storage residency without
    /// downcasting.
    fn selfmaint_stats(&self) -> Option<SelfMaintStats> {
        None
    }

    /// Durable state beyond `MV` that a checkpoint must capture for this
    /// algorithm to restart *exactly* where it left off. Checkpoints are
    /// only taken at quiescent points (`UQS = ∅`, nothing in flight), so
    /// for the paper's algorithms `MV` alone suffices — the default. A
    /// self-maintaining algorithm (`EcaAux`) additionally snapshots its
    /// auxiliary bags and their freshness, one [`AuxDurableState`] per
    /// base-relation slot, in slot order.
    fn checkpoint_aux(&self) -> Vec<AuxDurableState> {
        Vec::new()
    }

    /// Reinstall a checkpointed state: `mv` becomes the materialized
    /// view and `aux` (from [`ViewMaintainer::checkpoint_aux`]) restores
    /// any algorithm-specific durable state. Unlike
    /// [`ViewMaintainer::reset_to`] — which must assume notifications
    /// were lost and therefore distrusts auxiliary state — a checkpoint
    /// restore is exact: auxiliaries come back with the freshness they
    /// had, so replaying the logged tail re-emits byte-identical
    /// queries.
    ///
    /// # Errors
    /// [`CoreError::ResyncUnsupported`] when the algorithm can neither
    /// restore the extra state nor fall back to `reset_to`.
    fn restore_checkpoint(
        &mut self,
        mv: SignedBag,
        aux: Vec<AuxDurableState>,
    ) -> Result<(), CoreError> {
        let _ = aux;
        // At a quiescent point the default algorithms are fully
        // described by MV; reset_to installs it and clears the (already
        // empty) pending structures.
        self.reset_to(mv)
    }
}

/// The durable snapshot of one auxiliary-view slot, as captured by
/// [`ViewMaintainer::checkpoint_aux`] at a quiescent point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuxDurableState {
    /// Whether the auxiliary tracked the source exactly at checkpoint
    /// time (stale auxiliaries rebuild lazily after restore, exactly as
    /// they would have in the original run).
    pub fresh: bool,
    /// The resident bag, in retained-column coordinates.
    pub bag: SignedBag,
}

/// A snapshot of one warehouse-resident auxiliary view: the bag
/// projection of a base relation onto its retained columns.
#[derive(Clone, Debug)]
pub struct AuxSnapshot {
    /// Name of the projected base relation.
    pub relation: String,
    /// Retained column positions of that relation (ascending).
    pub retained: Vec<usize>,
    /// The resident bag.
    pub bag: SignedBag,
}

/// Counters and residency snapshot of a self-maintaining algorithm.
#[derive(Clone, Debug)]
pub struct SelfMaintStats {
    /// Updates answered entirely at the warehouse (zero round-trips).
    pub local_updates: u64,
    /// Updates that required a source round-trip.
    pub remote_updates: u64,
    /// Auxiliary rebuild queries sent after resyncs or cold starts.
    pub refresh_queries: u64,
    /// Total tuples resident across all auxiliary views.
    pub aux_tuples: u64,
    /// Total encoded bytes resident across all auxiliary views.
    pub aux_bytes: u64,
    /// Per-relation auxiliary contents, for honest storage accounting.
    pub auxiliaries: Vec<AuxSnapshot>,
}

/// Allocates fresh [`QueryId`]s. Shared by all algorithm implementations.
#[derive(Debug, Default, Clone)]
pub struct QueryIdGen {
    next: u64,
}

impl QueryIdGen {
    /// A generator starting at id 1.
    pub fn new() -> Self {
        QueryIdGen { next: 1 }
    }

    /// The next fresh id.
    pub fn fresh(&mut self) -> QueryId {
        let id = QueryId(self.next);
        self.next += 1;
        id
    }

    /// The value the next [`QueryIdGen::fresh`] call will hand out —
    /// what a checkpoint must persist for id allocation to resume
    /// deterministically after a restart.
    pub fn next_value(&self) -> u64 {
        self.next
    }

    /// Resume allocation at `next` (recovery only). Never rewinds: ids
    /// must stay unique across a process's whole life.
    pub fn resume_at(&mut self, next: u64) {
        self.next = self.next.max(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_gen_is_sequential() {
        let mut g = QueryIdGen::new();
        assert_eq!(g.fresh(), QueryId(1));
        assert_eq!(g.fresh(), QueryId(2));
    }
}
