//! The paper's primary contribution: correct materialized-view maintenance
//! at a warehouse that is *decoupled* from its data source.
//!
//! Zhuge, Garcia-Molina, Hammer, Widom — *View Maintenance in a Warehousing
//! Environment*, SIGMOD 1995.
//!
//! A warehouse materializes an SPJ view `V = π_proj(σ_cond(r1 × … × rn))`
//! over base relations that live at an autonomous source. The source only
//! notifies the warehouse of updates and answers queries; maintenance
//! queries are evaluated at the source *later* than the updates that
//! triggered them, so naive incremental maintenance computes **anomalous**
//! views (paper Examples 2–3). This crate implements:
//!
//! * [`ViewDef`] — SPJ view definitions (paper §4),
//! * [`Query`]/[`Term`] — signed query expressions and the substitution
//!   operator `V⟨U⟩` / `Q⟨U1,…,Uk⟩` (paper §4.2),
//! * [`BaseDb`] — a reference in-memory base-relation store used by tests,
//!   by the Store-Copies strategy and by differential checks against the
//!   storage engine,
//! * the algorithm family behind the [`ViewMaintainer`] trait
//!   ([`algorithms`]): Basic (Alg. 5.1), **ECA** (Alg. 5.2), ECA-Key (§5.4),
//!   ECA-Local (§5.5), Lazy Compensating (§5.3), Recompute-View (App. D.1)
//!   and Store-Copies (§1.2).
//!
//! Transport, event interleaving, cost metering and physical evaluation are
//! deliberately *not* here — see `eca-sim`, `eca-wire`, `eca-source`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod basedb;
pub mod composite;
pub mod error;
pub mod expr;
pub mod maintainer;
pub mod parse;
pub mod view;

pub use basedb::BaseDb;
pub use composite::CompositeView;
pub use error::CoreError;
pub use expr::{Atom, Query, QueryId, Term};
pub use maintainer::{AuxDurableState, OutboundQuery, ViewMaintainer};
pub use parse::{parse_view, ParseError};
pub use view::ViewDef;

// Re-export the relational substrate so downstream users need one import.
pub use eca_relational as relational;
