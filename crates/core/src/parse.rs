//! A small SQL-subset parser for view definitions.
//!
//! The paper specifies views in relational algebra; a released library
//! needs a friendlier front door. [`parse_view`] accepts the SPJ fragment
//!
//! ```sql
//! SELECT r1.W, r3.Z
//! FROM r1, r2, r3
//! WHERE r1.X = r2.X AND r2.Y = r3.Y AND r1.W > r3.Z
//! ```
//!
//! and resolves it against a schema catalog into a [`ViewDef`]. Aliases
//! enable self-joins (`FROM emp e, emp m WHERE e.mgr = m.id`), which map
//! onto the multiple-occurrence machinery. Conditions are conjunctions
//! and disjunctions of comparisons between columns and integer/string
//! literals; `AND` binds tighter than `OR`.

use std::fmt;

use eca_relational::{CmpOp, Operand, Predicate, Schema, Value};

use crate::error::CoreError;
use crate::view::ViewDef;

/// Errors raised while parsing a view definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexical error at byte offset.
    Lex {
        /// Byte offset in the input.
        at: usize,
        /// Description.
        message: String,
    },
    /// Unexpected token.
    Unexpected {
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A relation named in `FROM` is not in the catalog.
    UnknownRelation(String),
    /// A column reference did not resolve.
    UnknownColumn(String),
    /// An unqualified column name matched several relations.
    AmbiguousColumn(String),
    /// An alias was used twice.
    DuplicateAlias(String),
    /// The resolved view failed validation.
    View(CoreError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex { at, message } => write!(f, "lex error at byte {at}: {message}"),
            ParseError::Unexpected { found, expected } => {
                write!(f, "unexpected {found:?}, expected {expected}")
            }
            ParseError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            ParseError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            ParseError::AmbiguousColumn(c) => {
                write!(f, "column {c:?} is ambiguous; qualify it with an alias")
            }
            ParseError::DuplicateAlias(a) => write!(f, "alias {a:?} used twice"),
            ParseError::View(e) => write!(f, "invalid view: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<CoreError> for ParseError {
    fn from(e: CoreError) -> Self {
        ParseError::View(e)
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    Comma,
    Dot,
    Op(CmpOp),
    Select,
    From,
    Where,
    And,
    Or,
    Star,
    Eof,
}

fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Op(CmpOp::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Op(CmpOp::Ne));
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        tokens.push(Token::Op(CmpOp::Le));
                        i += 2;
                    }
                    Some(b'>') => {
                        tokens.push(Token::Op(CmpOp::Ne));
                        i += 2;
                    }
                    _ => {
                        tokens.push(Token::Op(CmpOp::Lt));
                        i += 1;
                    }
                };
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::Lex {
                        at: i,
                        message: "unterminated string".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse::<i64>().map_err(|_| ParseError::Lex {
                    at: start,
                    message: format!("bad integer {text:?}"),
                })?;
                tokens.push(Token::Int(value));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                tokens.push(match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Token::Select,
                    "FROM" => Token::From,
                    "WHERE" => Token::Where,
                    "AND" => Token::And,
                    "OR" => Token::Or,
                    _ => Token::Ident(word.to_owned()),
                });
            }
            _ => {
                return Err(ParseError::Lex {
                    at: i,
                    message: format!("unexpected char {c:?}"),
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

/// A column reference before resolution.
#[derive(Clone, Debug)]
struct ColRef {
    qualifier: Option<String>,
    column: String,
}

enum RawOperand {
    Col(ColRef),
    Lit(Value),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, expected: &'static str) -> Result<(), ParseError> {
        let got = self.next();
        if &got == want {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                found: format!("{got:?}"),
                expected,
            })
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError::Unexpected {
                found: format!("{other:?}"),
                expected,
            }),
        }
    }

    fn colref(&mut self) -> Result<ColRef, ParseError> {
        let first = self.ident("column reference")?;
        if self.peek() == &Token::Dot {
            self.next();
            let column = self.ident("column name after '.'")?;
            Ok(ColRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn operand(&mut self) -> Result<RawOperand, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.next();
                Ok(RawOperand::Lit(Value::Int(v)))
            }
            Token::Str(s) => {
                self.next();
                Ok(RawOperand::Lit(Value::str(s)))
            }
            Token::Ident(_) => Ok(RawOperand::Col(self.colref()?)),
            other => Err(ParseError::Unexpected {
                found: format!("{other:?}"),
                expected: "operand",
            }),
        }
    }
}

/// One `FROM` entry after parsing: relation name plus effective alias.
struct FromEntry {
    relation: String,
    alias: String,
}

/// Resolves column references against the `FROM` list.
struct Resolver<'a> {
    entries: &'a [FromEntry],
    schemas: &'a [Schema],
    offsets: Vec<usize>,
}

impl<'a> Resolver<'a> {
    fn resolve(&self, col: &ColRef) -> Result<usize, ParseError> {
        let display = match &col.qualifier {
            Some(q) => format!("{q}.{}", col.column),
            None => col.column.clone(),
        };
        let mut found: Option<usize> = None;
        for (i, entry) in self.entries.iter().enumerate() {
            if let Some(q) = &col.qualifier {
                if q != &entry.alias {
                    continue;
                }
            }
            if let Ok(pos) = self.schemas[i].position_of(&col.column) {
                if found.is_some() {
                    return Err(ParseError::AmbiguousColumn(display));
                }
                found = Some(self.offsets[i] + pos);
            }
        }
        found.ok_or(ParseError::UnknownColumn(display))
    }
}

/// Parse an SPJ view definition from a SQL-subset string, resolving
/// relation names against `catalog`.
///
/// # Errors
/// Lexical, syntactic and resolution errors; see [`ParseError`].
pub fn parse_view(name: &str, sql: &str, catalog: &[Schema]) -> Result<ViewDef, ParseError> {
    let mut p = Parser {
        tokens: lex(sql)?,
        pos: 0,
    };
    p.expect(&Token::Select, "SELECT")?;

    // Projection list (collected unresolved; FROM is parsed first).
    let mut raw_cols = Vec::new();
    loop {
        raw_cols.push(p.colref()?);
        if p.peek() == &Token::Comma {
            p.next();
        } else {
            break;
        }
    }

    p.expect(&Token::From, "FROM")?;
    let mut entries = Vec::new();
    loop {
        let relation = p.ident("relation name")?;
        // Optional alias: a bare identifier not followed by '.' handling
        // is unambiguous here because FROM entries are comma-separated.
        let alias = if let Token::Ident(a) = p.peek().clone() {
            p.next();
            a
        } else {
            relation.clone()
        };
        if entries.iter().any(|e: &FromEntry| e.alias == alias) {
            return Err(ParseError::DuplicateAlias(alias));
        }
        entries.push(FromEntry { relation, alias });
        if p.peek() == &Token::Comma {
            p.next();
        } else {
            break;
        }
    }

    // Resolve relations against the catalog; each occurrence clones its
    // schema (self-joins share the relation name).
    let mut schemas = Vec::with_capacity(entries.len());
    for e in &entries {
        let schema = catalog
            .iter()
            .find(|s| s.relation() == e.relation)
            .ok_or_else(|| ParseError::UnknownRelation(e.relation.clone()))?;
        schemas.push(schema.clone());
    }
    let mut offsets = Vec::with_capacity(schemas.len());
    let mut total = 0usize;
    for s in &schemas {
        offsets.push(total);
        total += s.arity();
    }
    let resolver = Resolver {
        entries: &entries,
        schemas: &schemas,
        offsets,
    };

    // WHERE clause: OR of ANDs of comparisons.
    let cond = if p.peek() == &Token::Where {
        p.next();
        parse_or(&mut p, &resolver)?
    } else {
        Predicate::True
    };

    match p.next() {
        Token::Eof => {}
        other => {
            return Err(ParseError::Unexpected {
                found: format!("{other:?}"),
                expected: "end of input",
            })
        }
    }

    let proj = raw_cols
        .iter()
        .map(|c| resolver.resolve(c))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(ViewDef::new(name, schemas, cond, proj)?)
}

fn parse_or(p: &mut Parser, r: &Resolver<'_>) -> Result<Predicate, ParseError> {
    let mut acc = parse_and(p, r)?;
    while p.peek() == &Token::Or {
        p.next();
        acc = acc.or(parse_and(p, r)?);
    }
    Ok(acc)
}

fn parse_and(p: &mut Parser, r: &Resolver<'_>) -> Result<Predicate, ParseError> {
    let mut acc = parse_cmp(p, r)?;
    while p.peek() == &Token::And {
        p.next();
        acc = acc.and(parse_cmp(p, r)?);
    }
    Ok(acc)
}

fn parse_cmp(p: &mut Parser, r: &Resolver<'_>) -> Result<Predicate, ParseError> {
    let lhs = p.operand()?;
    let op = match p.next() {
        Token::Op(op) => op,
        other => {
            return Err(ParseError::Unexpected {
                found: format!("{other:?}"),
                expected: "comparison operator",
            })
        }
    };
    let rhs = p.operand()?;
    let to_operand = |raw: RawOperand| -> Result<Operand, ParseError> {
        Ok(match raw {
            RawOperand::Col(c) => Operand::Column(r.resolve(&c)?),
            RawOperand::Lit(v) => Operand::Const(v),
        })
    };
    Ok(Predicate::Cmp {
        lhs: to_operand(lhs)?,
        op,
        rhs: to_operand(rhs)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::Tuple;

    fn catalog() -> Vec<Schema> {
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
            Schema::new("r3", &["Y", "Z"]),
            Schema::new("emp", &["id", "mgr"]),
        ]
    }

    #[test]
    fn parses_the_example6_view() {
        let v = parse_view(
            "V",
            "SELECT r1.W, r3.Z FROM r1, r2, r3 \
             WHERE r1.X = r2.X AND r2.Y = r3.Y AND r1.W > r3.Z",
            &catalog(),
        )
        .unwrap();
        assert_eq!(v.base().len(), 3);
        assert_eq!(v.proj(), &[0, 5]);
        // Behavioural check against a hand-built equivalent.
        let reference = crate::ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
                Schema::new("r3", &["Y", "Z"]),
            ],
            Predicate::col_eq(1, 2)
                .and(Predicate::col_eq(3, 4))
                .and(Predicate::col_cmp(0, CmpOp::Gt, 5)),
            vec![0, 5],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&reference);
        for (rel, t) in [
            ("r1", Tuple::ints([9, 1])),
            ("r1", Tuple::ints([0, 1])),
            ("r2", Tuple::ints([1, 2])),
            ("r3", Tuple::ints([2, 3])),
        ] {
            db.insert(rel, t);
        }
        assert_eq!(v.eval(&db).unwrap(), reference.eval(&db).unwrap());
    }

    #[test]
    fn unqualified_unique_columns_resolve() {
        let v = parse_view("V", "SELECT W FROM r1, r2 WHERE r1.X = r2.X", &catalog()).unwrap();
        assert_eq!(v.proj(), &[0]);
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let err = parse_view("V", "SELECT X FROM r1, r2", &catalog()).unwrap_err();
        assert!(matches!(err, ParseError::AmbiguousColumn(_)), "{err}");
    }

    #[test]
    fn self_join_with_aliases() {
        let v = parse_view(
            "grandmgr",
            "SELECT e.id, m.mgr FROM emp e, emp m WHERE e.mgr = m.id",
            &catalog(),
        )
        .unwrap();
        assert!(v.has_repeated_relations());
        assert_eq!(v.proj(), &[0, 3]);
        // An update fans out over both occurrences.
        let q = v
            .substitute(&eca_relational::Update::insert("emp", Tuple::ints([1, 1])))
            .unwrap();
        assert_eq!(q.terms().len(), 3);
    }

    #[test]
    fn literals_and_all_operators() {
        let v = parse_view(
            "V",
            "SELECT W FROM r1 WHERE W >= 2 AND W <= 9 AND X != 4 AND X <> 5 \
             AND W < 100 AND X > -3 OR W = 0",
            &catalog(),
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([3, 1]));
        db.insert("r1", Tuple::ints([0, 4]));
        db.insert("r1", Tuple::ints([200, 1]));
        let result = v.eval(&db).unwrap();
        assert_eq!(result.count(&Tuple::ints([3])), 1);
        assert_eq!(result.count(&Tuple::ints([0])), 1, "OR branch");
        assert_eq!(result.count(&Tuple::ints([200])), 0);
    }

    #[test]
    fn string_literals() {
        let cat = vec![Schema::new("people", &["name", "city"])];
        let v = parse_view("V", "SELECT name FROM people WHERE city = 'berlin'", &cat).unwrap();
        let mut db = BaseDb::new();
        db.insert(
            "people",
            Tuple::new([Value::str("ada"), Value::str("berlin")]),
        );
        db.insert(
            "people",
            Tuple::new([Value::str("bob"), Value::str("paris")]),
        );
        let result = v.eval(&db).unwrap();
        assert_eq!(result.count(&Tuple::new([Value::str("ada")])), 1);
        assert_eq!(result.pos_len(), 1);
    }

    #[test]
    fn error_paths() {
        let cat = catalog();
        assert!(matches!(
            parse_view("V", "SELECT W FROM nope", &cat),
            Err(ParseError::UnknownRelation(_))
        ));
        assert!(matches!(
            parse_view("V", "SELECT Q FROM r1", &cat),
            Err(ParseError::UnknownColumn(_))
        ));
        assert!(matches!(
            parse_view("V", "SELECT W FROM r1 a, r2 a", &cat),
            Err(ParseError::DuplicateAlias(_))
        ));
        assert!(matches!(
            parse_view("V", "FROM r1", &cat),
            Err(ParseError::Unexpected { .. })
        ));
        assert!(matches!(
            parse_view("V", "SELECT W FROM r1 WHERE W @ 3", &cat),
            Err(ParseError::Lex { .. })
        ));
        assert!(matches!(
            parse_view("V", "SELECT W FROM r1 WHERE W = 'open", &cat),
            Err(ParseError::Lex { .. })
        ));
        assert!(matches!(
            parse_view("V", "SELECT W FROM r1 extra junk", &cat),
            Err(ParseError::Unexpected { .. })
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let v = parse_view("V", "select W from r1 where W = 1", &catalog()).unwrap();
        assert_eq!(v.proj(), &[0]);
    }
}
