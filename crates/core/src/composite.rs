//! Union / difference views (paper §7: *"We will modify the algorithms to
//! handle views defined by more complex relational algebra expressions
//! (e.g., using union and/or difference)"*).
//!
//! Under the paper's own signed-count semantics (§4.1), bag union and bag
//! difference are **linear**: a composite view
//!
//! ```text
//! V = Σ_b  sign_b · V_b        (sign_b ∈ {+1, −1})
//! ```
//!
//! is maintained exactly by maintaining each SPJ branch `V_b`
//! independently (with any strongly consistent algorithm) and combining
//! the branch materializations with signed addition. Each branch sees the
//! same in-order update stream, so at quiescence every branch holds
//! `V_b[ss_p]` and the combination holds `V[ss_p]`.
//!
//! Note this is the *signed* (monoid) difference: counts may go negative
//! if a tuple occurs more often in the subtracted branch, mirroring how
//! signed relations behave everywhere else in the paper. `positive_part`
//! of the result is the monus (proper bag difference) when needed.

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};
use crate::view::ViewDef;

/// One branch of a composite view: a coefficient and its maintainer.
struct Branch {
    sign: i64,
    maintainer: Box<dyn ViewMaintainer>,
}

/// A warehouse view defined as a signed combination of SPJ views.
pub struct CompositeView {
    name: String,
    branches: Vec<Branch>,
    ids: QueryIdGen,
    /// Global id → (branch index, branch-local id).
    routing: std::collections::BTreeMap<QueryId, (usize, QueryId)>,
    /// Cached combination, rebuilt lazily after changes.
    combined: SignedBag,
    dirty: bool,
}

impl CompositeView {
    /// An empty composite.
    pub fn new(name: impl Into<String>) -> Self {
        CompositeView {
            name: name.into(),
            branches: Vec::new(),
            ids: QueryIdGen::new(),
            routing: std::collections::BTreeMap::new(),
            combined: SignedBag::new(),
            dirty: false,
        }
    }

    /// Add a positively-signed (union) branch.
    pub fn union_branch(&mut self, maintainer: Box<dyn ViewMaintainer>) -> &mut Self {
        self.push(1, maintainer)
    }

    /// Add a negatively-signed (difference) branch.
    pub fn minus_branch(&mut self, maintainer: Box<dyn ViewMaintainer>) -> &mut Self {
        self.push(-1, maintainer)
    }

    fn push(&mut self, sign: i64, maintainer: Box<dyn ViewMaintainer>) -> &mut Self {
        self.branches.push(Branch { sign, maintainer });
        self.dirty = true;
        self
    }

    /// The composite's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// The branch views in order, with their signs.
    pub fn branch_views(&self) -> impl Iterator<Item = (i64, &ViewDef)> + '_ {
        self.branches.iter().map(|b| (b.sign, b.maintainer.view()))
    }

    /// Route an update to every branch whose view involves it.
    ///
    /// # Errors
    /// Propagates branch maintainer errors.
    pub fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        let mut out = Vec::new();
        for (idx, branch) in self.branches.iter_mut().enumerate() {
            for q in branch.maintainer.on_update(update)? {
                let global = self.ids.fresh();
                self.routing.insert(global, (idx, q.id));
                out.push(OutboundQuery {
                    id: global,
                    query: q.query,
                });
            }
        }
        self.dirty = true;
        Ok(out)
    }

    /// Deliver an answer to its branch.
    ///
    /// # Errors
    /// [`CoreError::UnknownQuery`] on unrouted ids.
    pub fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        let (idx, local) = self
            .routing
            .remove(&id)
            .ok_or(CoreError::UnknownQuery { id: id.0 })?;
        let mut out = Vec::new();
        for q in self.branches[idx].maintainer.on_answer(local, answer)? {
            let global = self.ids.fresh();
            self.routing.insert(global, (idx, q.id));
            out.push(OutboundQuery {
                id: global,
                query: q.query,
            });
        }
        self.dirty = true;
        Ok(out)
    }

    /// The combined materialized view `Σ_b sign_b · MV_b`.
    pub fn materialized(&mut self) -> &SignedBag {
        if self.dirty {
            let mut combined = SignedBag::new();
            for b in &self.branches {
                match b.sign {
                    1 => combined.merge(b.maintainer.materialized()),
                    -1 => combined.merge_negated(b.maintainer.materialized()),
                    s => {
                        for (t, c) in b.maintainer.materialized().iter() {
                            combined.add(t.clone(), c * s);
                        }
                    }
                }
            }
            self.combined = combined;
            self.dirty = false;
        }
        &self.combined
    }

    /// Whether every branch is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.branches.iter().all(|b| b.maintainer.is_quiescent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn branch(name: &str, right: &str) -> ViewDef {
        // π_W(r1(W,X) ⋈ right(X,Y))
        ViewDef::new(
            name,
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new(right, &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    fn db() -> BaseDb {
        let mut db = BaseDb::new();
        for r in ["r1", "r2", "r3"] {
            db.register(r);
        }
        db.insert("r1", Tuple::ints([1, 5]));
        db.insert("r2", Tuple::ints([5, 0]));
        db
    }

    fn settle(comp: &mut CompositeView, db: &BaseDb, mut queries: Vec<OutboundQuery>) {
        while let Some(q) = queries.pop() {
            let a = q.query.eval(db).unwrap();
            queries.extend(comp.on_answer(q.id, a).unwrap());
        }
    }

    /// Union view: V = π_W(r1 ⋈ r2) ∪ π_W(r1 ⋈ r3), maintained through
    /// racing updates.
    #[test]
    fn union_view_converges() {
        let v1 = branch("b1", "r2");
        let v2 = branch("b2", "r3");
        let mut db = db();
        let mut comp = CompositeView::new("U");
        comp.union_branch(
            AlgorithmKind::Eca
                .instantiate(&v1, v1.eval(&db).unwrap())
                .unwrap(),
        );
        comp.union_branch(
            AlgorithmKind::Eca
                .instantiate(&v2, v2.eval(&db).unwrap())
                .unwrap(),
        );

        let phase1 = [
            Update::insert("r3", Tuple::ints([5, 9])), // derives [1] in b2 too
            Update::insert("r1", Tuple::ints([4, 5])), // derives [4] in both
        ];
        let mut queries = Vec::new();
        for u in &phase1 {
            db.apply(u);
            queries.extend(comp.on_update(u).unwrap());
        }
        settle(&mut comp, &db, queries);
        assert!(comp.is_quiescent());
        // Bag-union semantics: [4] derived once per branch → count 2.
        assert_eq!(comp.materialized().count(&Tuple::ints([4])), 2);

        // Deleting the r2 tuple kills all b1 derivations.
        let del = Update::delete("r2", Tuple::ints([5, 0]));
        db.apply(&del);
        let queries = comp.on_update(&del).unwrap();
        settle(&mut comp, &db, queries);

        let expected = v1.eval(&db).unwrap().plus(&v2.eval(&db).unwrap());
        assert_eq!(*comp.materialized(), expected);
        assert_eq!(comp.materialized().count(&Tuple::ints([4])), 1);
    }

    /// Signed difference view: V = π_W(r1 ⋈ r2) − π_W(r1 ⋈ r3).
    #[test]
    fn difference_view_converges() {
        let v1 = branch("b1", "r2");
        let v2 = branch("b2", "r3");
        let mut db = db();
        let mut comp = CompositeView::new("D");
        comp.union_branch(
            AlgorithmKind::Eca
                .instantiate(&v1, v1.eval(&db).unwrap())
                .unwrap(),
        );
        comp.minus_branch(
            AlgorithmKind::Eca
                .instantiate(&v2, v2.eval(&db).unwrap())
                .unwrap(),
        );
        assert_eq!(comp.branch_count(), 2);

        // Initially: b1 = ([1]), b2 = ∅ → D = ([1]).
        assert_eq!(comp.materialized().count(&Tuple::ints([1])), 1);

        // Make b2 also derive [1]: the difference cancels.
        let u = Update::insert("r3", Tuple::ints([5, 7]));
        db.apply(&u);
        let queries = comp.on_update(&u).unwrap();
        settle(&mut comp, &db, queries);
        let expected = v1.eval(&db).unwrap().minus(&v2.eval(&db).unwrap());
        assert_eq!(*comp.materialized(), expected);
        assert_eq!(comp.materialized().count(&Tuple::ints([1])), 0);

        // Over-subtraction goes negative (signed semantics); the monus is
        // the positive part.
        let u2 = Update::insert("r3", Tuple::ints([5, 8]));
        db.apply(&u2);
        let queries = comp.on_update(&u2).unwrap();
        settle(&mut comp, &db, queries);
        assert_eq!(comp.materialized().count(&Tuple::ints([1])), -1);
        assert!(comp.materialized().positive_part().is_empty());
    }

    /// Branches may use different algorithms.
    #[test]
    fn mixed_branch_algorithms() {
        let v1 = branch("b1", "r2");
        let v2 = branch("b2", "r3");
        let mut db = db();
        let mut comp = CompositeView::new("M");
        comp.union_branch(
            AlgorithmKind::Lca
                .instantiate(&v1, v1.eval(&db).unwrap())
                .unwrap(),
        );
        comp.union_branch(
            AlgorithmKind::StoreCopies
                .instantiate_with_base(&v2, v2.eval(&db).unwrap(), Some(db.clone()))
                .unwrap(),
        );
        let u = Update::insert("r1", Tuple::ints([9, 5]));
        db.apply(&u);
        let queries = comp.on_update(&u).unwrap();
        settle(&mut comp, &db, queries);
        let expected = v1.eval(&db).unwrap().plus(&v2.eval(&db).unwrap());
        assert_eq!(*comp.materialized(), expected);
    }

    #[test]
    fn unknown_answer_rejected() {
        let mut comp = CompositeView::new("X");
        assert!(comp.on_answer(QueryId(1), SignedBag::new()).is_err());
    }
}
