//! The view-maintenance algorithm family.
//!
//! | Algorithm | Paper section | Guarantee (over interleaved histories) |
//! |---|---|---|
//! | [`Basic`] | Alg. 5.1 (\[BLT86\] adapted) | none — exhibits anomalies |
//! | [`Eca`] | Alg. 5.2 | strong consistency |
//! | [`EcaKey`] | §5.4 | strong consistency (keyed views) |
//! | [`EcaLocal`] | §5.5 (future work in paper) | strong consistency on supported view classes |
//! | [`Lca`] | §5.3 (sketched in paper) | completeness |
//! | [`RecomputeView`] | Alg. D.1 | strong consistency |
//! | [`StoreCopies`] | §1.2 | completeness (local replicas) |

pub mod basic;
pub mod batch;
pub mod deferred;
pub mod eca;
pub mod eca_aux;
pub mod ecak;
pub mod ecal;
pub mod lca;
pub mod rv;
pub mod sc;

pub use basic::Basic;
pub use batch::BatchEca;
pub use deferred::Deferred;
pub use eca::Eca;
pub use eca_aux::EcaAux;
pub use ecak::EcaKey;
pub use ecal::EcaLocal;
pub use lca::Lca;
pub use rv::RecomputeView;
pub use sc::StoreCopies;

use crate::error::CoreError;
use crate::maintainer::ViewMaintainer;
use crate::view::ViewDef;

/// Which algorithm to instantiate — used by the simulator, benches and
/// examples to parameterize runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlgorithmKind {
    /// The anomalous baseline (Alg. 5.1).
    Basic,
    /// The Eager Compensating Algorithm (Alg. 5.2), queries sent
    /// verbatim.
    Eca,
    /// ECA with the Appendix D.2 refinement: fully-bound terms are
    /// evaluated locally, never shipped. The §6 cost analysis assumes
    /// this variant.
    EcaOptimized,
    /// ECA with auxiliary-view self-maintenance: compensating queries
    /// are answered against warehouse-resident projections of keyed
    /// base relations, round-tripping to the source only when the
    /// auxiliaries cannot determine the delta.
    EcaAux,
    /// ECA-Key (§5.4); requires a fully keyed view.
    EcaKey,
    /// ECA-Local (§5.5).
    EcaLocal,
    /// The Lazy Compensating Algorithm (§5.3).
    Lca,
    /// Recompute the view every `s` updates (Alg. D.1).
    RecomputeView {
        /// Recompute period `s ≥ 1`.
        period: u64,
    },
    /// Store copies of all base relations at the warehouse (§1.2).
    StoreCopies,
    /// ECA with update batching: one coalesced query per `batch_size`
    /// updates (§7 future work).
    BatchEca {
        /// Updates per batch (≥ 1).
        batch_size: usize,
    },
}

impl AlgorithmKind {
    /// Instantiate the algorithm for `view` with `initial` as the starting
    /// materialized state (which must equal `V[ss0]`). Store-Copies starts
    /// with empty replicas; use [`AlgorithmKind::instantiate_with_base`]
    /// when the source starts non-empty.
    ///
    /// # Errors
    /// Propagates per-algorithm construction errors (e.g. ECA-Key on an
    /// unkeyed view).
    pub fn instantiate(
        self,
        view: &ViewDef,
        initial: eca_relational::SignedBag,
    ) -> Result<Box<dyn ViewMaintainer>, CoreError> {
        self.instantiate_with_base(view, initial, None)
    }

    /// As [`AlgorithmKind::instantiate`], but supplies the source's initial
    /// base-relation contents so replica-keeping strategies (Store-Copies)
    /// start in sync.
    ///
    /// # Errors
    /// Propagates per-algorithm construction errors.
    pub fn instantiate_with_base(
        self,
        view: &ViewDef,
        initial: eca_relational::SignedBag,
        initial_base: Option<crate::BaseDb>,
    ) -> Result<Box<dyn ViewMaintainer>, CoreError> {
        Ok(match self {
            AlgorithmKind::Basic => Box::new(Basic::new(view.clone(), initial)),
            AlgorithmKind::Eca => Box::new(Eca::new(view.clone(), initial)),
            AlgorithmKind::EcaOptimized => Box::new(Eca::with_local_eval(view.clone(), initial)),
            AlgorithmKind::EcaAux => match initial_base {
                Some(db) => Box::new(EcaAux::with_base(view.clone(), initial, &db)),
                None => Box::new(EcaAux::new(view.clone(), initial)),
            },
            AlgorithmKind::EcaKey => Box::new(EcaKey::new(view.clone(), initial)?),
            AlgorithmKind::EcaLocal => Box::new(EcaLocal::new(view.clone(), initial)),
            AlgorithmKind::Lca => Box::new(Lca::new(view.clone(), initial)),
            AlgorithmKind::RecomputeView { period } => {
                Box::new(RecomputeView::new(view.clone(), initial, period)?)
            }
            AlgorithmKind::StoreCopies => match initial_base {
                Some(db) => Box::new(StoreCopies::with_replicas(view.clone(), initial, db)),
                None => Box::new(StoreCopies::new(view.clone(), initial)),
            },
            AlgorithmKind::BatchEca { batch_size } => {
                Box::new(BatchEca::new(view.clone(), initial, batch_size)?)
            }
        })
    }

    /// Display name matching the paper's abbreviations.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::Basic => "Basic",
            AlgorithmKind::Eca => "ECA",
            AlgorithmKind::EcaOptimized => "ECA*",
            AlgorithmKind::EcaAux => "ECA-Aux",
            AlgorithmKind::EcaKey => "ECA-Key",
            AlgorithmKind::EcaLocal => "ECA-Local",
            AlgorithmKind::Lca => "LCA",
            AlgorithmKind::RecomputeView { .. } => "RV",
            AlgorithmKind::StoreCopies => "SC",
            AlgorithmKind::BatchEca { .. } => "Batch-ECA",
        }
    }
}
