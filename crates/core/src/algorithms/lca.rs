//! The Lazy Compensating Algorithm (paper §5.3).
//!
//! The paper sketches LCA in one paragraph: *"For each source update, LCA
//! waits until it has received all query answers (including compensation)
//! for the update, then applies the changes for that update to the view."*
//! The result is **completeness** — every source state `V[ss_i]` appears as
//! a warehouse state — at a cost in messages and latency.
//!
//! ## Our faithful interpretation (documented substitution)
//!
//! ECA's query `Q_i = V⟨U_i⟩ − Σ_{Q_j ∈ UQS} Q_j⟨U_i⟩` mixes terms that
//! belong to *different* updates: the `V⟨U_i⟩` part is `U_i`'s own delta;
//! each compensating term `−Q_j⟨U_i⟩` corrects the in-flight answer of the
//! *earlier* update that `Q_j`'s terms descend from. We therefore:
//!
//! 1. tag every term with its **owner** — the update whose `V⟨U⟩` it
//!    descends from; substitution preserves ownership;
//! 2. send each term as its own single-term query so answers can be routed
//!    to owners (this is why LCA sends more messages than ECA);
//! 3. accumulate per-owner deltas; owner `j`'s delta is closed when all its
//!    terms are answered (new `j`-owned terms only arise by substituting
//!    into *unanswered* `j`-owned terms, so a zero pending count is final);
//! 4. apply closed deltas to `MV` strictly in update order.
//!
//! Step 4 makes `MV` pass through exactly `V[ss_0], V[ss_1], …, V[ss_n]`:
//! by Lemma B.2 each per-owner delta equals `V[ss_j] − V[ss_{j-1}]`.

use std::collections::BTreeMap;

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::{Query, QueryId, Term};
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};
use crate::view::ViewDef;

struct PendingDelta {
    remaining: usize,
    delta: SignedBag,
}

/// The Lazy Compensating Algorithm.
pub struct Lca {
    view: ViewDef,
    mv: SignedBag,
    /// In-flight single-term queries, with owner tags.
    unanswered: BTreeMap<QueryId, Term>,
    /// Per-update accumulating deltas, keyed by update sequence number.
    pending: BTreeMap<u64, PendingDelta>,
    next_seq: u64,
    ids: QueryIdGen,
    /// Warehouse states the view has passed through (for completeness
    /// checking); starts with the initial state.
    history: Vec<SignedBag>,
    /// States applied during the current event, drained by the harness.
    fresh_states: Vec<SignedBag>,
}

impl Lca {
    /// Create with `initial = V[ss0]`.
    pub fn new(view: ViewDef, initial: SignedBag) -> Self {
        Lca {
            view,
            history: vec![initial.clone()],
            fresh_states: Vec::new(),
            mv: initial,
            unanswered: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_seq: 1,
            ids: QueryIdGen::new(),
        }
    }

    /// Every view state `MV` has assumed, in order (initial state first).
    /// LCA's completeness guarantee is that this equals
    /// `V[ss_0], V[ss_1], …`.
    pub fn state_history(&self) -> &[SignedBag] {
        &self.history
    }

    fn send_term(&mut self, term: Term, out: &mut Vec<OutboundQuery>) {
        let owner = term.owner().expect("LCA terms are always owned");
        self.pending
            .entry(owner)
            .or_insert_with(|| PendingDelta {
                remaining: 0,
                delta: SignedBag::new(),
            })
            .remaining += 1;
        let id = self.ids.fresh();
        self.unanswered.insert(id, term.clone());
        out.push(OutboundQuery {
            id,
            query: Query::from_terms(self.view.clone(), vec![term]),
        });
    }

    fn flush(&mut self) {
        while let Some(entry) = self.pending.first_entry() {
            if entry.get().remaining > 0 {
                break;
            }
            let closed = entry.remove();
            self.mv.merge(&closed.delta);
            self.history.push(self.mv.clone());
            self.fresh_states.push(self.mv.clone());
        }
    }
}

impl ViewMaintainer for Lca {
    fn algorithm(&self) -> &'static str {
        "LCA"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.view.involves(update) {
            return Ok(Vec::new());
        }
        let seq = self.next_seq;
        self.next_seq += 1;

        // Compensating terms for every unanswered term, keeping ownership.
        // Collected before the own term is registered so an update never
        // compensates itself.
        let compensations: Vec<Term> = self
            .unanswered
            .values()
            .flat_map(|t| t.substitute_all_occurrences(&self.view, update))
            .map(|t| t.negated())
            .collect();

        // V⟨U⟩ may expand to several terms for self-join views; they all
        // belong to this update's delta.
        let own_terms: Vec<Term> = self
            .view
            .substitute(update)?
            .terms()
            .iter()
            .map(|t| t.with_owner(seq))
            .collect();

        let mut out = Vec::with_capacity(own_terms.len() + compensations.len());
        for t in own_terms {
            self.send_term(t, &mut out);
        }
        for c in compensations {
            self.send_term(c, &mut out);
        }
        Ok(out)
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        let term = self
            .unanswered
            .remove(&id)
            .ok_or(CoreError::UnknownQuery { id: id.0 })?;
        let owner = term.owner().expect("LCA terms are always owned");
        let pending = self
            .pending
            .get_mut(&owner)
            .expect("owner registered when term was sent");
        pending.delta.merge(&answer);
        pending.remaining -= 1;
        self.flush();
        Ok(Vec::new())
    }

    fn is_quiescent(&self) -> bool {
        self.unanswered.is_empty() && self.pending.is_empty()
    }

    fn drain_intermediate_states(&mut self) -> Vec<SignedBag> {
        std::mem::take(&mut self.fresh_states)
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        // The resynced state joins the history: LCA's completeness claim
        // continues from V(ss), with the per-update deltas of abandoned
        // queries discarded (their effects are inside V(ss) already).
        self.history.push(state.clone());
        self.fresh_states.clear();
        self.mv = state;
        self.unanswered.clear();
        self.pending.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    fn view3() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
                Schema::new("r3", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2).and(Predicate::col_eq(3, 4)),
            vec![0],
        )
        .unwrap()
    }

    /// Example 2 under LCA: view passes through V[ss0]=∅, V[ss1]=([1]),
    /// V[ss2]=([1],[4]) — complete, not just convergent.
    #[test]
    fn example_2_complete_history() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Lca::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        let qs1 = alg.on_update(&u1).unwrap();
        assert_eq!(qs1.len(), 1);
        db.apply(&u2);
        let qs2 = alg.on_update(&u2).unwrap();
        // Own term for U2 plus one compensation owned by U1.
        assert_eq!(qs2.len(), 2);

        // All answers evaluated on the final state.
        for q in qs1.iter().chain(&qs2) {
            let a = q.query.eval(&db).unwrap();
            alg.on_answer(q.id, a).unwrap();
        }
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());

        let expected_states = [
            SignedBag::new(),
            SignedBag::from_tuples([Tuple::ints([1])]),
            SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])]),
        ];
        assert_eq!(alg.state_history(), &expected_states[..]);
    }

    /// Example 4's three inserts: per-update deltas are ∅, ∅, ([1],[4]).
    #[test]
    fn example_4_per_update_deltas() {
        let v = view3();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Lca::new(v.clone(), SignedBag::new());

        let updates = [
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::insert("r3", Tuple::ints([5, 3])),
            Update::insert("r2", Tuple::ints([2, 5])),
        ];
        let mut source_states = vec![v.eval(&db).unwrap()];
        let mut all_queries = Vec::new();
        for u in &updates {
            db.apply(u);
            source_states.push(v.eval(&db).unwrap());
            all_queries.extend(alg.on_update(u).unwrap());
        }
        for q in &all_queries {
            let a = q.query.eval(&db).unwrap();
            alg.on_answer(q.id, a).unwrap();
        }
        assert!(alg.is_quiescent());
        assert_eq!(alg.state_history(), &source_states[..]);
    }

    /// Deletions (Example 8) also produce a complete history.
    #[test]
    fn example_8_deletions_complete() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r1", Tuple::ints([4, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let mut alg = Lca::new(v.clone(), v.eval(&db).unwrap());

        let updates = [
            Update::delete("r1", Tuple::ints([4, 2])),
            Update::delete("r2", Tuple::ints([2, 3])),
        ];
        let mut source_states = vec![v.eval(&db).unwrap()];
        let mut queries = Vec::new();
        for u in &updates {
            db.apply(u);
            source_states.push(v.eval(&db).unwrap());
            queries.extend(alg.on_update(u).unwrap());
        }
        for q in &queries {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert_eq!(alg.state_history(), &source_states[..]);
        assert!(alg.materialized().is_empty());
    }

    /// Answers arriving between updates (Example 7's interleaving) still
    /// yield a complete, in-order history.
    #[test]
    fn example_7_interleaved() {
        let v = view3();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Lca::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r1", Tuple::ints([4, 2]));
        let u2 = Update::insert("r3", Tuple::ints([5, 3]));
        let u3 = Update::insert("r2", Tuple::ints([2, 5]));

        let mut source_states = vec![v.eval(&db).unwrap()];
        db.apply(&u1);
        source_states.push(v.eval(&db).unwrap());
        let qs1 = alg.on_update(&u1).unwrap();
        db.apply(&u2);
        source_states.push(v.eval(&db).unwrap());
        let qs2 = alg.on_update(&u2).unwrap();

        // Answer U1's own term now (evaluated after U2, before U3).
        for q in &qs1 {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }

        db.apply(&u3);
        source_states.push(v.eval(&db).unwrap());
        let qs3 = alg.on_update(&u3).unwrap();
        for q in qs2.iter().chain(&qs3) {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }

        assert!(alg.is_quiescent());
        assert_eq!(alg.state_history(), &source_states[..]);
    }

    #[test]
    fn unknown_answer_rejected() {
        let mut alg = Lca::new(view2(), SignedBag::new());
        assert!(alg.on_answer(QueryId(3), SignedBag::new()).is_err());
    }

    #[test]
    fn irrelevant_updates_skipped() {
        let mut alg = Lca::new(view2(), SignedBag::new());
        assert!(alg
            .on_update(&Update::insert("zz", Tuple::ints([1])))
            .unwrap()
            .is_empty());
        assert!(alg.is_quiescent());
    }
}
