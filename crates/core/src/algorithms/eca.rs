//! The Eager Compensating Algorithm (paper Alg. 5.2).
//!
//! When update `U_i` arrives while queries are pending (`UQS ≠ ∅`), those
//! queries will be evaluated at the source on a state that already reflects
//! `U_i`. ECA offsets this *eagerly* by attaching one compensating query per
//! pending query:
//!
//! ```text
//! Q_i = V⟨U_i⟩ − Σ_{Q_j ∈ UQS} Q_j⟨U_i⟩
//! ```
//!
//! Answers are buffered in `COLLECT` and installed into `MV` only when
//! `UQS = ∅`, so the view never assumes an invalid intermediate state —
//! this is what lifts ECA from convergent to strongly consistent
//! (paper §5.2 and Appendix B).

use std::collections::BTreeMap;

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::{Query, QueryId};
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};
use crate::view::ViewDef;

/// The Eager Compensating Algorithm.
///
/// ```
/// use eca_core::algorithms::Eca;
/// use eca_core::maintainer::ViewMaintainer;
/// use eca_core::{BaseDb, ViewDef};
/// use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
///
/// let view = ViewDef::new(
///     "V",
///     vec![Schema::new("r1", &["W", "X"]), Schema::new("r2", &["X", "Y"])],
///     Predicate::col_eq(1, 2),
///     vec![0],
/// )?;
/// let mut source = BaseDb::for_view(&view);
/// source.insert("r1", Tuple::ints([1, 2]));
/// let mut eca = Eca::new(view.clone(), SignedBag::new());
///
/// // Example 2's racing updates: both execute before any query answers.
/// let u1 = Update::insert("r2", Tuple::ints([2, 3]));
/// let u2 = Update::insert("r1", Tuple::ints([4, 2]));
/// source.apply(&u1);
/// let q1 = eca.on_update(&u1)?.remove(0);
/// source.apply(&u2);
/// let q2 = eca.on_update(&u2)?.remove(0); // carries a compensating term
///
/// eca.on_answer(q1.id, q1.query.eval(&source)?)?;
/// eca.on_answer(q2.id, q2.query.eval(&source)?)?;
/// assert_eq!(*eca.materialized(), view.eval(&source)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Eca {
    view: ViewDef,
    mv: SignedBag,
    collect: SignedBag,
    /// The unanswered query set, with each query's full expression kept so
    /// later updates can compensate it (`Q_j⟨U_i⟩`).
    uqs: BTreeMap<QueryId, Query>,
    ids: QueryIdGen,
    /// Appendix D.2 optimization: evaluate fully-bound terms locally
    /// instead of shipping them.
    local_eval: bool,
}

impl Eca {
    /// Create with `initial` as the starting materialized state
    /// (`MV = V[ss0]`). Queries are sent verbatim as in Algorithm 5.2.
    pub fn new(view: ViewDef, initial: SignedBag) -> Self {
        Eca {
            view,
            mv: initial,
            collect: SignedBag::new(),
            uqs: BTreeMap::new(),
            ids: QueryIdGen::new(),
            local_eval: false,
        }
    }

    /// As [`Eca::new`], with the Appendix D.2 refinement enabled: terms
    /// whose atoms are all bound tuples mention no base relation, so they
    /// are evaluated at the warehouse and never shipped ("no compensating
    /// query needs to be sent since all data needed is already at the
    /// warehouse"). The cost analysis of §6 assumes this behaviour.
    pub fn with_local_eval(view: ViewDef, initial: SignedBag) -> Self {
        Eca {
            local_eval: true,
            ..Eca::new(view, initial)
        }
    }

    /// The current `COLLECT` buffer (exposed for traces and tests).
    pub fn collect(&self) -> &SignedBag {
        &self.collect
    }

    /// Number of pending queries `|UQS|`.
    pub fn pending_queries(&self) -> usize {
        self.uqs.len()
    }
}

impl ViewMaintainer for Eca {
    fn algorithm(&self) -> &'static str {
        "ECA"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.view.involves(update) {
            return Ok(Vec::new());
        }
        // Q_i = V⟨U_i⟩ − Σ_{Q_j ∈ UQS} Q_j⟨U_i⟩
        let mut query = self.view.substitute(update)?;
        for pending in self.uqs.values() {
            query = query.minus(&pending.substitute(update));
        }

        // Appendix D.2: terms with every atom bound mention no base
        // relation — "all data needed is already at the warehouse" — so
        // they are evaluated locally instead of shipped to the source.
        let (local, remote): (Vec<_>, Vec<_>) = query
            .terms()
            .iter()
            .cloned()
            .partition(|t| self.local_eval && t.unbound_count() == 0);
        if !local.is_empty() {
            let local_query = Query::from_terms(self.view.clone(), local);
            // No base relations are touched; an empty lookup suffices.
            let value = local_query.eval(&crate::BaseDb::new())?;
            self.collect.merge(&value);
        }
        if remote.is_empty() {
            // Nothing needs the source (only possible for single-relation
            // views, where V⟨U⟩ itself is fully bound). Install
            // immediately if nothing is pending.
            if self.uqs.is_empty() {
                self.mv.merge(&self.collect);
                self.collect = SignedBag::new();
            }
            return Ok(Vec::new());
        }
        let remote_query = Query::from_terms(self.view.clone(), remote);
        let id = self.ids.fresh();
        // UQS stores the shipped query; the locally-evaluated terms would
        // vanish under any future substitution anyway.
        self.uqs.insert(id, remote_query.clone());
        Ok(vec![OutboundQuery {
            id,
            query: remote_query,
        }])
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        if self.uqs.remove(&id).is_none() {
            return Err(CoreError::UnknownQuery { id: id.0 });
        }
        self.collect.merge(&answer);
        if self.uqs.is_empty() {
            // MV ← MV + COLLECT; COLLECT ← ∅
            self.mv.merge(&self.collect);
            self.collect = SignedBag::new();
        }
        Ok(Vec::new())
    }

    fn is_quiescent(&self) -> bool {
        self.uqs.is_empty()
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        // RV-style resync (Alg. D.1): MV ← V(ss); UQS, COLLECT ← ∅.
        // Answers to the abandoned queries, if any straggle in, are
        // rejected as UnknownQuery by the id check in `on_answer`.
        self.mv = state;
        self.collect = SignedBag::new();
        self.uqs.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2(proj: Vec<usize>) -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            proj,
        )
        .unwrap()
    }

    fn view3() -> ViewDef {
        // V = π_W(r1 ⋈X r2 ⋈Y r3), r2(X,Y), r3(X,Y) joined r2.Y = r3.X.
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
                Schema::new("r3", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2).and(Predicate::col_eq(3, 4)),
            vec![0],
        )
        .unwrap()
    }

    /// Paper §1.2 walk-through of Example 2: ECA repairs the insert anomaly.
    #[test]
    fn example_2_with_compensation() {
        let v = view2(vec![0]);
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Eca::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));

        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);
        // Q2 must carry one compensating term.
        assert_eq!(q2.query.terms().len(), 2);

        let a1 = q1.query.eval(&db).unwrap();
        // A1 contains the anomalous extra [4] ...
        assert_eq!(a1.count(&Tuple::ints([4])), 1);
        alg.on_answer(q1.id, a1).unwrap();
        // ... but the view is not yet updated (UQS nonempty).
        assert!(alg.materialized().is_empty());
        assert!(!alg.is_quiescent());

        let a2 = q2.query.eval(&db).unwrap();
        // The compensation makes A2 empty (paper step 8).
        assert!(a2.is_empty());
        alg.on_answer(q2.id, a2).unwrap();

        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        assert_eq!(alg.materialized().count(&Tuple::ints([1])), 1);
        assert_eq!(alg.materialized().count(&Tuple::ints([4])), 1);
    }

    /// Paper Example 4: three insertions into three relations, all before
    /// any answer.
    #[test]
    fn example_4_three_inserts() {
        let v = view3();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Eca::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r1", Tuple::ints([4, 2]));
        let u2 = Update::insert("r3", Tuple::ints([5, 3]));
        let u3 = Update::insert("r2", Tuple::ints([2, 5]));

        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        assert_eq!(q1.query.terms().len(), 1);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);
        assert_eq!(q2.query.terms().len(), 2);
        db.apply(&u3);
        let q3 = alg.on_update(&u3).unwrap().remove(0);
        // Q3 = V⟨U3⟩ − Q1⟨U3⟩ − Q2⟨U3⟩ where Q2⟨U3⟩ has 2 terms → 4 terms.
        assert_eq!(q3.query.terms().len(), 4);

        let a1 = q1.query.eval(&db).unwrap();
        assert_eq!(a1, SignedBag::from_tuples([Tuple::ints([4])]));
        alg.on_answer(q1.id, a1).unwrap();

        let a2 = q2.query.eval(&db).unwrap();
        assert_eq!(a2, SignedBag::from_tuples([Tuple::ints([1])]));
        alg.on_answer(q2.id, a2).unwrap();

        let a3 = q3.query.eval(&db).unwrap();
        assert!(a3.is_empty(), "A3 should be empty, got {a3:?}");
        alg.on_answer(q3.id, a3).unwrap();

        assert_eq!(
            *alg.materialized(),
            SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])])
        );
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// Appendix A Example 7: same updates as Example 4 but A1 arrives
    /// between U2 and U3.
    #[test]
    fn example_7_interleaved_answer() {
        let v = view3();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Eca::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r1", Tuple::ints([4, 2]));
        let u2 = Update::insert("r3", Tuple::ints([5, 3]));
        let u3 = Update::insert("r2", Tuple::ints([2, 5]));

        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);

        // A1 evaluated now (after U1, U2; before U3): empty.
        let a1 = q1.query.eval(&db).unwrap();
        assert!(a1.is_empty());
        alg.on_answer(q1.id, a1).unwrap();

        db.apply(&u3);
        let q3 = alg.on_update(&u3).unwrap().remove(0);
        // Only Q2 is pending now: Q3 = V⟨U3⟩ − Q2⟨U3⟩ (paper: 3 terms).
        assert_eq!(q3.query.terms().len(), 3);

        let a2 = q2.query.eval(&db).unwrap();
        assert_eq!(a2, SignedBag::from_tuples([Tuple::ints([1])]));
        alg.on_answer(q2.id, a2).unwrap();
        let a3 = q3.query.eval(&db).unwrap();
        assert_eq!(a3, SignedBag::from_tuples([Tuple::ints([4])]));
        alg.on_answer(q3.id, a3).unwrap();

        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// Appendix A Example 8: two deletions.
    #[test]
    fn example_8_deletions() {
        let v = view2(vec![0]);
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r1", Tuple::ints([4, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let mut alg = Eca::new(v.clone(), v.eval(&db).unwrap());
        assert_eq!(alg.materialized().pos_len(), 2);

        let u1 = Update::delete("r1", Tuple::ints([4, 2]));
        let u2 = Update::delete("r2", Tuple::ints([2, 3]));
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);

        let a1 = q1.query.eval(&db).unwrap();
        assert!(a1.is_empty());
        alg.on_answer(q1.id, a1).unwrap();
        let a2 = q2.query.eval(&db).unwrap();
        // A2 = (−[4], −[1]) per the paper.
        assert_eq!(a2.count(&Tuple::ints([1])), -1);
        assert_eq!(a2.count(&Tuple::ints([4])), -1);
        alg.on_answer(q2.id, a2).unwrap();

        assert!(alg.materialized().is_empty());
        assert!(v.eval(&db).unwrap().is_empty());
    }

    /// Appendix A Example 9: mixed deletion and insertion.
    #[test]
    fn example_9_delete_then_insert() {
        let v = view2(vec![0]);
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r1", Tuple::ints([4, 2]));
        let mut alg = Eca::new(v.clone(), SignedBag::new());

        let u1 = Update::delete("r1", Tuple::ints([4, 2]));
        let u2 = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);

        let a1 = q1.query.eval(&db).unwrap();
        // A1 = (−[4]) — the deleted tuple joins the inserted r2 tuple.
        assert_eq!(a1.count(&Tuple::ints([4])), -1);
        alg.on_answer(q1.id, a1).unwrap();
        let a2 = q2.query.eval(&db).unwrap();
        // A2 = ([1] + [4]) per the paper.
        assert_eq!(a2.count(&Tuple::ints([1])), 1);
        assert_eq!(a2.count(&Tuple::ints([4])), 1);
        alg.on_answer(q2.id, a2).unwrap();

        assert_eq!(
            *alg.materialized(),
            SignedBag::from_tuples([Tuple::ints([1])])
        );
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// Property 3 of §5.6: with spaced updates, ECA behaves exactly like
    /// the basic algorithm (no compensating terms).
    #[test]
    fn degenerates_to_basic_when_quiescent() {
        let v = view2(vec![0]);
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Eca::new(v.clone(), SignedBag::new());

        for i in 0..5 {
            let u = Update::insert("r2", Tuple::ints([2, 10 + i]));
            db.apply(&u);
            let q = alg.on_update(&u).unwrap().remove(0);
            assert_eq!(q.query.terms().len(), 1, "no compensation expected");
            let a = q.query.eval(&db).unwrap();
            alg.on_answer(q.id, a).unwrap();
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        }
    }

    #[test]
    fn collect_buffer_exposed() {
        let v = view2(vec![0]);
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Eca::new(v.clone(), SignedBag::new());
        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r2", Tuple::ints([2, 4]));
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);
        assert_eq!(alg.pending_queries(), 2);
        alg.on_answer(q1.id, q1.query.eval(&db).unwrap()).unwrap();
        assert_eq!(alg.collect().count(&Tuple::ints([1])), 1);
        alg.on_answer(q2.id, q2.query.eval(&db).unwrap()).unwrap();
        assert!(alg.collect().is_empty(), "COLLECT reset after install");
    }

    #[test]
    fn unknown_answer_rejected() {
        let v = view2(vec![0]);
        let mut alg = Eca::new(v, SignedBag::new());
        assert!(alg.on_answer(QueryId(1), SignedBag::new()).is_err());
    }

    /// An RV-style resync mid-flight clears UQS/COLLECT, installs the
    /// recomputed state, and rejects answers to abandoned queries.
    #[test]
    fn reset_to_clears_pending_state() {
        let v = view2(vec![0]);
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Eca::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r2", Tuple::ints([2, 4]));
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);
        // One answer lands in COLLECT, one stays pending.
        alg.on_answer(q1.id, q1.query.eval(&db).unwrap()).unwrap();
        assert!(!alg.is_quiescent());
        assert!(!alg.collect().is_empty());

        let recomputed = v.eval(&db).unwrap();
        alg.reset_to(recomputed.clone()).unwrap();
        assert!(alg.is_quiescent());
        assert!(alg.collect().is_empty());
        assert_eq!(*alg.materialized(), recomputed);
        assert!(alg.reissue_safe());
        // The abandoned query's answer is now unknown.
        assert!(matches!(
            alg.on_answer(q2.id, SignedBag::new()),
            Err(CoreError::UnknownQuery { .. })
        ));
        // Incremental processing resumes cleanly from the resynced state.
        let u3 = Update::insert("r1", Tuple::ints([7, 2]));
        db.apply(&u3);
        let q3 = alg.on_update(&u3).unwrap().remove(0);
        alg.on_answer(q3.id, q3.query.eval(&db).unwrap()).unwrap();
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// The Appendix D.2 variant strips fully-bound compensating terms from
    /// shipped queries and still converges (Example 2 replay).
    #[test]
    fn local_eval_strips_bound_terms() {
        let v = view2(vec![0]);
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut plain = Eca::new(v.clone(), SignedBag::new());
        let mut opt = Eca::with_local_eval(v.clone(), SignedBag::new());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        let p1 = plain.on_update(&u1).unwrap().remove(0);
        let o1 = opt.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let p2 = plain.on_update(&u2).unwrap().remove(0);
        let o2 = opt.on_update(&u2).unwrap().remove(0);
        // Plain ships the bound compensation; optimized does not.
        assert_eq!(p2.query.terms().len(), 2);
        assert_eq!(o2.query.terms().len(), 1);

        for (alg, q) in [(&mut plain, &p1), (&mut opt, &o1)] {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        for (alg, q) in [(&mut plain, &p2), (&mut opt, &o2)] {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        let correct = v.eval(&db).unwrap();
        assert_eq!(*plain.materialized(), correct);
        assert_eq!(*opt.materialized(), correct);
    }

    /// With local evaluation, a single-relation view needs no source at
    /// all — ECA degenerates to purely local maintenance.
    #[test]
    fn local_eval_single_relation_view_never_queries() {
        let v = ViewDef::new(
            "V",
            vec![Schema::new("r1", &["A", "B"])],
            Predicate::col_cmp(0, eca_relational::CmpOp::Lt, 1),
            vec![0],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        let mut alg = Eca::with_local_eval(v.clone(), SignedBag::new());
        for u in [
            Update::insert("r1", Tuple::ints([1, 5])),
            Update::insert("r1", Tuple::ints([9, 2])),
            Update::delete("r1", Tuple::ints([1, 5])),
        ] {
            db.apply(&u);
            assert!(alg.on_update(&u).unwrap().is_empty());
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        }
        assert!(alg.is_quiescent());
    }
}
