//! ECA-Aux: self-maintenance through warehouse-resident auxiliary views.
//!
//! The paper's spectrum runs from ECA (every update triggers a round-trip
//! compensating query at the source, §5.2) to Store-Copies (full replicas
//! make every query local, §1.2). The self-maintenance literature supplies
//! the middle ground: keep a small **auxiliary view** per base relation at
//! the warehouse — the bag projection of the relation onto the columns the
//! view definition actually uses — and answer compensating queries against
//! those auxiliaries with **zero source round-trips** whenever they
//! determine the delta.
//!
//! # Auxiliary derivation
//!
//! For base relation `r_i` of `V = π_proj(σ_cond(r1 × … × rn))`, the
//! *used columns* are the positions of `cond` and `proj` that fall inside
//! `r_i`'s slot of the product. The auxiliary is
//!
//! ```text
//! aux_i = π_{used(i) ∪ key(i)}(r_i)        (bag projection)
//! ```
//!
//! Bag projection preserves multiplicities, so evaluating any term over
//! the auxiliaries — with `cond` and `proj` remapped into retained-column
//! coordinates — yields *exactly* the term's value over the full
//! relations: columns outside `used(i)` are referenced by neither. By
//! default a relation is **covered** (an auxiliary is kept) when its
//! schema declares a key ([`eca_relational::Schema::with_key`]) — keyness
//! is the signal that the projection is meaningfully narrower than a full
//! replica and that notifications identify tuples unambiguously; coverage
//! can be overridden per relation for storage/savings trade-off sweeps.
//! Relations that occur several times in the view (self-joins) are never
//! covered.
//!
//! # Local-answer decision procedure
//!
//! On update `U_i` the maintainer forms the usual compensated query
//! `Q_i = V⟨U_i⟩ − Σ_{Q_j∈UQS} Q_j⟨U_i⟩` and partitions its terms: a term
//! is **locally evaluable** iff every unbound atom's relation has a fresh
//! auxiliary (the Appendix-D.2 rule "all data needed is already at the
//! warehouse", generalized from fully-bound terms to covered relations).
//! Local terms are evaluated immediately against the auxiliaries, which —
//! having just absorbed `U_i`'s notification — hold exactly the projected
//! source state `ss_i`; by Lemma B.2 the local value is the exact delta
//! contribution, so answering instantly is equivalent to ECA with a source
//! that evaluates the query at `ss_i` before any later update, and the
//! §5.2 strong-consistency argument carries over unchanged. Remaining
//! terms fall back to a plain ECA round-trip and stay in `UQS` so later
//! updates compensate them. An update whose terms are all local sends
//! nothing: no query enters `UQS`, nothing touches the wire.
//!
//! # Drift-refresh invariant
//!
//! Fresh auxiliaries never drift: FIFO notifications carry whole tuples,
//! so each auxiliary passes through exactly the projected source states
//! (the Store-Copies argument). After a resync ([`EcaAux`]'s `reset_to`)
//! the auxiliaries are marked **stale** — notifications were lost — and a
//! stale auxiliary is never consulted. The next update that arrives rides
//! the fallback path and additionally emits one rebuild query
//! `π_retained(r_i)` per stale auxiliary; the answer reinstalls the bag
//! and marks it fresh (sound by the same FIFO argument as RV resync:
//! notifications for updates the source applied before evaluating the
//! rebuild query arrive before its answer). Staleness therefore never
//! persists beyond the first post-resync update.

use std::collections::BTreeMap;

use eca_relational::algebra::spj;
use eca_relational::{Predicate, SignedBag, Update};

use crate::basedb::{BaseDb, BaseLookup};
use crate::error::CoreError;
use crate::expr::{Atom, Query, QueryId, Term};
use crate::maintainer::{OutboundQuery, QueryIdGen, SelfMaintStats, ViewMaintainer};
use crate::view::ViewDef;

/// One warehouse-resident auxiliary view: `π_retained(r_i)` as a bag.
struct AuxView {
    /// Local column positions of the base relation kept in the auxiliary
    /// (used ∪ key, ascending). For uncovered relations this is every
    /// column, defining the coordinate system of local evaluation.
    retained: Vec<usize>,
    /// The resident bag. Meaningful only while `covered && fresh`.
    bag: SignedBag,
    /// Whether an auxiliary is maintained for this relation at all.
    covered: bool,
    /// Whether the bag reflects every notification received so far.
    /// Stale auxiliaries (post-resync, or never initialized) are never
    /// consulted and are rebuilt through a refresh query.
    fresh: bool,
    /// The in-flight rebuild query, if any.
    refresh: Option<QueryId>,
}

/// ECA with auxiliary-view self-maintenance.
///
/// ```
/// use eca_core::algorithms::EcaAux;
/// use eca_core::maintainer::ViewMaintainer;
/// use eca_core::{BaseDb, ViewDef};
/// use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
///
/// let view = ViewDef::new(
///     "V",
///     vec![
///         Schema::with_key("r1", &["W", "X"], &["W"])?,
///         Schema::with_key("r2", &["X", "Y"], &["Y"])?,
///     ],
///     Predicate::col_eq(1, 2),
///     vec![0],
/// )?;
/// let mut source = BaseDb::for_view(&view);
/// source.insert("r1", Tuple::ints([1, 2]));
/// // Seeded from the initial base state: every update is answered
/// // locally, with zero source round-trips.
/// let mut alg = EcaAux::with_base(view.clone(), view.eval(&source)?, &source);
/// for u in [
///     Update::insert("r2", Tuple::ints([2, 3])),
///     Update::insert("r1", Tuple::ints([4, 2])),
/// ] {
///     source.apply(&u);
///     assert!(alg.on_update(&u)?.is_empty());
/// }
/// assert_eq!(*alg.materialized(), view.eval(&source)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EcaAux {
    view: ViewDef,
    mv: SignedBag,
    collect: SignedBag,
    /// Unanswered *remote* compensating queries, kept whole so later
    /// updates can compensate them (`Q_j⟨U_i⟩`), exactly as in ECA.
    uqs: BTreeMap<QueryId, Query>,
    /// In-flight auxiliary rebuild queries → relation index.
    refreshing: BTreeMap<QueryId, usize>,
    ids: QueryIdGen,
    aux: Vec<AuxView>,
    /// `cond` remapped into retained-column coordinates.
    local_cond: Predicate,
    /// `proj` remapped into retained-column coordinates.
    local_proj: Vec<usize>,
    /// Updates answered entirely at the warehouse (zero round-trips).
    local_updates: u64,
    /// Updates that needed a source round-trip.
    remote_updates: u64,
    /// Rebuild queries sent for stale auxiliaries.
    refresh_queries: u64,
}

impl EcaAux {
    /// Create with `initial` as the starting materialized state and the
    /// default coverage rule (keyed, non-repeated relations). Without a
    /// base snapshot the auxiliaries start stale and are rebuilt from the
    /// source by the first update's refresh queries.
    pub fn new(view: ViewDef, initial: SignedBag) -> Self {
        let covered = Self::default_coverage(&view);
        Self::build(view, initial, &covered, None)
    }

    /// As [`EcaAux::new`], with the auxiliaries seeded fresh from the
    /// source's initial base contents (`ss_0`), so maintenance starts
    /// fully local.
    pub fn with_base(view: ViewDef, initial: SignedBag, base: &BaseDb) -> Self {
        let covered = Self::default_coverage(&view);
        Self::build(view, initial, &covered, Some(base))
    }

    /// Explicit per-relation coverage (storage/savings sweeps). Repeated
    /// relations are forced uncovered regardless of `covered`.
    ///
    /// # Errors
    /// [`CoreError::UnknownRelation`] when `covered` is not one flag per
    /// base relation.
    pub fn with_coverage(
        view: ViewDef,
        initial: SignedBag,
        covered: &[bool],
        base: Option<&BaseDb>,
    ) -> Result<Self, CoreError> {
        if covered.len() != view.base().len() {
            return Err(CoreError::UnknownRelation {
                relation: format!("coverage spec has {} flags", covered.len()),
            });
        }
        let covered: Vec<bool> = covered
            .iter()
            .enumerate()
            .map(|(i, &c)| c && view.relation_indices(view.base()[i].relation()).len() == 1)
            .collect();
        Ok(Self::build(view, initial, &covered, base))
    }

    /// Default coverage: keyed schemas, excluding self-join occurrences.
    fn default_coverage(view: &ViewDef) -> Vec<bool> {
        view.base()
            .iter()
            .map(|s| s.has_key() && view.relation_indices(s.relation()).len() == 1)
            .collect()
    }

    fn build(view: ViewDef, initial: SignedBag, covered: &[bool], base: Option<&BaseDb>) -> Self {
        // Retained columns per slot: used ∪ key for covered relations,
        // every column otherwise (uncovered slots only ever hold bound
        // tuples in local terms, which carry all columns anyway).
        let cond_cols = view.cond().columns();
        let mut retained: Vec<Vec<usize>> = Vec::with_capacity(view.base().len());
        for (i, schema) in view.base().iter().enumerate() {
            let off = view.offset(i);
            let arity = schema.arity();
            let cols: Vec<usize> = if covered[i] {
                let mut keep: Vec<usize> = cond_cols
                    .iter()
                    .chain(view.proj())
                    .filter(|&&c| c >= off && c < off + arity)
                    .map(|&c| c - off)
                    .chain(schema.key_positions().iter().copied())
                    .collect();
                keep.sort_unstable();
                keep.dedup();
                keep
            } else {
                (0..arity).collect()
            };
            retained.push(cols);
        }
        // Old product column → retained-coordinate column.
        let mut map = vec![0usize; view.product_arity()];
        let mut new_off = 0usize;
        for (i, cols) in retained.iter().enumerate() {
            for (q, &p) in cols.iter().enumerate() {
                map[view.offset(i) + p] = new_off + q;
            }
            new_off += cols.len();
        }
        let local_cond = view.cond().map_columns(&|c| map[c]);
        let local_proj: Vec<usize> = view.proj().iter().map(|&c| map[c]).collect();

        let aux = retained
            .into_iter()
            .enumerate()
            .map(|(i, cols)| {
                let mut bag = SignedBag::new();
                let mut fresh = false;
                if covered[i] {
                    if let Some(db) = base {
                        if let Some(rel) = db.bag(view.base()[i].relation()) {
                            for (t, c) in rel.iter() {
                                bag.add(t.project(&cols), c);
                            }
                        }
                        fresh = true;
                    }
                }
                AuxView {
                    retained: cols,
                    bag,
                    covered: covered[i],
                    fresh,
                    refresh: None,
                }
            })
            .collect();

        EcaAux {
            view,
            mv: initial,
            collect: SignedBag::new(),
            uqs: BTreeMap::new(),
            refreshing: BTreeMap::new(),
            ids: QueryIdGen::new(),
            aux,
            local_cond,
            local_proj,
            local_updates: 0,
            remote_updates: 0,
            refresh_queries: 0,
        }
    }

    /// The current `COLLECT` buffer (exposed for traces and tests).
    pub fn collect(&self) -> &SignedBag {
        &self.collect
    }

    /// Number of pending compensating queries `|UQS|` (excludes rebuild
    /// queries).
    pub fn pending_queries(&self) -> usize {
        self.uqs.len()
    }

    /// Which relations have an auxiliary maintained.
    pub fn coverage(&self) -> Vec<bool> {
        self.aux.iter().map(|a| a.covered).collect()
    }

    /// Updates answered with zero source round-trips so far.
    pub fn local_updates(&self) -> u64 {
        self.local_updates
    }

    /// Updates that fell back to a source round-trip so far.
    pub fn remote_updates(&self) -> u64 {
        self.remote_updates
    }

    /// Apply the notified tuple to every fresh auxiliary of its relation.
    fn apply_to_aux(&mut self, update: &Update) {
        for i in self.view.relation_indices(&update.relation) {
            let aux = &mut self.aux[i];
            if aux.covered && aux.fresh {
                let st = update.signed_tuple();
                aux.bag
                    .add(st.tuple.project(&aux.retained), st.sign.factor());
            }
        }
    }

    /// Whether a term is evaluable at the warehouse: every unbound atom's
    /// relation must have a fresh auxiliary. Fully-bound terms (the
    /// Appendix D.2 case) are trivially local.
    fn term_is_local(&self, term: &Term) -> bool {
        term.atoms().iter().enumerate().all(|(i, a)| match a {
            Atom::Rel(_) => self.aux[i].covered && self.aux[i].fresh,
            Atom::Bound(_) => true,
        })
    }

    /// Evaluate local terms over the auxiliaries in retained coordinates.
    fn eval_local_terms(&self, terms: &[Term]) -> Result<SignedBag, CoreError> {
        let mut out = SignedBag::new();
        for term in terms {
            let mut singletons: Vec<SignedBag> = Vec::new();
            for (i, atom) in term.atoms().iter().enumerate() {
                if let Atom::Bound(st) = atom {
                    let mut bag = SignedBag::new();
                    bag.add(st.tuple.project(&self.aux[i].retained), st.sign.factor());
                    singletons.push(bag);
                }
            }
            let mut inputs: Vec<&SignedBag> = Vec::with_capacity(term.atoms().len());
            let mut si = 0usize;
            for (i, atom) in term.atoms().iter().enumerate() {
                match atom {
                    Atom::Rel(_) => inputs.push(&self.aux[i].bag),
                    Atom::Bound(_) => {
                        inputs.push(&singletons[si]);
                        si += 1;
                    }
                }
            }
            let value =
                spj(&inputs, &self.local_cond, &self.local_proj).map_err(CoreError::Relational)?;
            match term.factor() {
                1 => out.merge(&value),
                -1 => out.merge(&value.negated()),
                f => {
                    for (t, c) in value.iter() {
                        out.add(t.clone(), c * f);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Rebuild queries for every stale covered auxiliary without one in
    /// flight: `π_retained(r_i)` as a degenerate single-relation view.
    fn refresh_stale_auxes(&mut self) -> Vec<OutboundQuery> {
        let mut out = Vec::new();
        for i in 0..self.aux.len() {
            if self.aux[i].covered && !self.aux[i].fresh && self.aux[i].refresh.is_none() {
                let aux_view = ViewDef::new(
                    format!("{}::aux{}", self.view.name(), i),
                    vec![self.view.base()[i].clone()],
                    Predicate::True,
                    self.aux[i].retained.clone(),
                )
                .expect("retained positions are within the relation's arity");
                let id = self.ids.fresh();
                self.aux[i].refresh = Some(id);
                self.refreshing.insert(id, i);
                self.refresh_queries += 1;
                out.push(OutboundQuery {
                    id,
                    query: aux_view.as_query(),
                });
            }
        }
        out
    }
}

impl ViewMaintainer for EcaAux {
    fn algorithm(&self) -> &'static str {
        "ECA-Aux"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.view.involves(update) {
            return Ok(Vec::new());
        }
        // Advance fresh auxiliaries to the post-update source state ss_i
        // before evaluating anything against them (Lemma B.2 wants the
        // delta at ss_i).
        self.apply_to_aux(update);
        // Stale auxiliaries ride the round-trip: rebuild queries first.
        let mut out = self.refresh_stale_auxes();

        // Q_i = V⟨U_i⟩ − Σ_{Q_j ∈ UQS} Q_j⟨U_i⟩, as in ECA.
        let mut query = self.view.substitute(update)?;
        for pending in self.uqs.values() {
            query = query.minus(&pending.substitute(update));
        }
        let (local, remote): (Vec<Term>, Vec<Term>) = query
            .terms()
            .iter()
            .cloned()
            .partition(|t| self.term_is_local(t));
        if !local.is_empty() {
            let delta = self.eval_local_terms(&local)?;
            self.collect.merge(&delta);
        }
        if remote.is_empty() {
            // Fully self-maintained: no compensating query leaves the
            // warehouse. Install immediately when nothing is pending, so
            // MV only moves through complete states.
            self.local_updates += 1;
            if self.uqs.is_empty() {
                self.mv.merge(&self.collect);
                self.collect = SignedBag::new();
            }
            return Ok(out);
        }
        self.remote_updates += 1;
        let remote_query = Query::from_terms(self.view.clone(), remote);
        let id = self.ids.fresh();
        self.uqs.insert(id, remote_query.clone());
        out.push(OutboundQuery {
            id,
            query: remote_query,
        });
        Ok(out)
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        if let Some(i) = self.refreshing.remove(&id) {
            // A rebuilt auxiliary: install the projected bag and resume
            // maintaining it incrementally. FIFO delivery guarantees the
            // answer reflects every notification processed so far.
            let aux = &mut self.aux[i];
            aux.bag = answer;
            aux.fresh = true;
            aux.refresh = None;
            return Ok(Vec::new());
        }
        if self.uqs.remove(&id).is_none() {
            return Err(CoreError::UnknownQuery { id: id.0 });
        }
        self.collect.merge(&answer);
        if self.uqs.is_empty() {
            // MV ← MV + COLLECT; COLLECT ← ∅
            self.mv.merge(&self.collect);
            self.collect = SignedBag::new();
        }
        Ok(Vec::new())
    }

    fn is_quiescent(&self) -> bool {
        self.uqs.is_empty() && self.refreshing.is_empty()
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        // RV-style resync: adopt V(ss), drop pending work, and mark every
        // auxiliary stale — notifications may have been lost, so the bags
        // can no longer be trusted. They are rebuilt lazily by the next
        // update's refresh queries.
        self.mv = state;
        self.collect = SignedBag::new();
        self.uqs.clear();
        self.refreshing.clear();
        for aux in &mut self.aux {
            aux.bag = SignedBag::new();
            aux.fresh = false;
            aux.refresh = None;
        }
        Ok(())
    }

    fn checkpoint_aux(&self) -> Vec<crate::maintainer::AuxDurableState> {
        self.aux
            .iter()
            .map(|a| crate::maintainer::AuxDurableState {
                fresh: a.fresh,
                bag: a.bag.clone(),
            })
            .collect()
    }

    fn restore_checkpoint(
        &mut self,
        mv: SignedBag,
        aux: Vec<crate::maintainer::AuxDurableState>,
    ) -> Result<(), CoreError> {
        if aux.len() != self.aux.len() {
            return Err(CoreError::UnknownRelation {
                relation: format!("checkpoint has {} auxiliary slots", aux.len()),
            });
        }
        // Exact reinstall: unlike reset_to, freshness is trusted — the
        // checkpoint was cut at a quiescent point, so a fresh bag there
        // tracked the source exactly and replay resumes from it without
        // emitting the rebuild queries a stale-marking resync would.
        self.mv = mv;
        self.collect = SignedBag::new();
        self.uqs.clear();
        self.refreshing.clear();
        for (slot, durable) in self.aux.iter_mut().zip(aux) {
            slot.bag = durable.bag;
            slot.fresh = durable.fresh && slot.covered;
            slot.refresh = None;
        }
        Ok(())
    }

    fn selfmaint_stats(&self) -> Option<SelfMaintStats> {
        let mut aux_tuples = 0u64;
        let mut aux_bytes = 0u64;
        let mut auxiliaries = Vec::new();
        for (i, aux) in self.aux.iter().enumerate() {
            if !aux.covered {
                continue;
            }
            aux_tuples += aux.bag.pos_len() + aux.bag.neg_len();
            aux_bytes += aux.bag.encoded_len() as u64;
            auxiliaries.push(crate::maintainer::AuxSnapshot {
                relation: self.view.base()[i].relation().to_owned(),
                retained: aux.retained.clone(),
                bag: aux.bag.clone(),
            });
        }
        Some(SelfMaintStats {
            local_updates: self.local_updates,
            remote_updates: self.remote_updates,
            refresh_queries: self.refresh_queries,
            aux_tuples,
            aux_bytes,
            auxiliaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::{CmpOp, Schema, Tuple};

    /// Example-2 shaped keyed view: V = π_W(r1 ⋈ r2).
    fn keyed_view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    /// Three-relation keyed chain with a projection that drops columns,
    /// so the auxiliaries are genuinely narrower than replicas.
    fn keyed_view3() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X", "P"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["X", "Y"]).unwrap(),
                Schema::with_key("r3", &["Y", "Z", "Q"], &["Z"]).unwrap(),
            ],
            Predicate::col_eq(1, 3).and(Predicate::col_eq(4, 5)),
            vec![0, 6],
        )
        .unwrap()
    }

    fn seeded(view: &ViewDef, db: &BaseDb) -> EcaAux {
        EcaAux::with_base(view.clone(), view.eval(db).unwrap(), db)
    }

    #[test]
    fn retained_columns_are_used_union_key() {
        let v = keyed_view3();
        let db = BaseDb::for_view(&v);
        let alg = seeded(&v, &db);
        // r1(W,X,P): cond uses X (col 1), proj uses W (col 0), key W → {0,1}.
        assert_eq!(alg.aux[0].retained, vec![0, 1]);
        // r2(X,Y): both columns used by cond, key (X,Y) → {0,1}.
        assert_eq!(alg.aux[1].retained, vec![0, 1]);
        // r3(Y,Z,Q): cond uses Y (prod col 5 → local 0), proj uses Z
        // (prod col 6 → local 1), key Z → {0,1}; Q is dropped.
        assert_eq!(alg.aux[2].retained, vec![0, 1]);
    }

    #[test]
    fn racing_updates_are_answered_locally_and_exactly() {
        // Example 2's anomaly script, fully self-maintained.
        let v = keyed_view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = seeded(&v, &db);

        for u in [
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
        ] {
            db.apply(&u);
            assert!(alg.on_update(&u).unwrap().is_empty(), "{u:?}");
            // Strong consistency, per update: MV == V[ss_i].
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        }
        assert!(alg.is_quiescent());
        assert_eq!(alg.local_updates(), 2);
        assert_eq!(alg.remote_updates(), 0);
    }

    #[test]
    fn projected_auxiliaries_evaluate_terms_exactly() {
        // Columns P and Q never reach the auxiliaries, yet deltas match
        // the full evaluation, duplicates included.
        let v = keyed_view3();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2, 77]));
        db.insert("r1", Tuple::ints([1, 2, 88])); // same (W,X), distinct P
        db.insert("r2", Tuple::ints([2, 3]));
        db.insert("r3", Tuple::ints([3, 9, 55]));
        let mut alg = seeded(&v, &db);

        for u in [
            Update::insert("r3", Tuple::ints([3, 10, 66])),
            Update::delete("r1", Tuple::ints([1, 2, 88])),
            Update::insert("r2", Tuple::ints([2, 3])), // duplicate tuple
        ] {
            db.apply(&u);
            assert!(alg.on_update(&u).unwrap().is_empty(), "{u:?}");
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap(), "{u:?}");
        }
    }

    #[test]
    fn unkeyed_relations_fall_back_to_round_trips() {
        let v = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::new("r2", &["X", "Y"]), // unkeyed → uncovered
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 4]));
        let mut alg = seeded(&v, &db);
        assert_eq!(alg.coverage(), vec![true, false]);

        // An r2 update binds the uncovered slot; the remaining atom (r1)
        // is covered → local, zero round-trips.
        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u1);
        assert!(alg.on_update(&u1).unwrap().is_empty());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());

        // An r1 update needs r2's contents → round-trip.
        let u2 = Update::insert("r1", Tuple::ints([7, 2]));
        db.apply(&u2);
        let q = alg.on_update(&u2).unwrap().remove(0);
        assert_eq!(alg.remote_updates(), 1);
        alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    #[test]
    fn mixed_local_and_remote_interleavings_converge() {
        // Partial coverage, racing updates: local deltas buffer in
        // COLLECT while a remote query is pending, and install together.
        let v = keyed_view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 4]));
        let mut alg =
            EcaAux::with_coverage(v.clone(), v.eval(&db).unwrap(), &[true, false], Some(&db))
                .unwrap();

        // U1 on r1: needs r2 → remote, pending.
        let u1 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        // U2 on r2: local (r1 covered), buffered in COLLECT; the
        // compensating term −Q1⟨U2⟩ is fully bound, also local.
        let u2 = Update::insert("r2", Tuple::ints([2, 5]));
        db.apply(&u2);
        assert!(alg.on_update(&u2).unwrap().is_empty());
        assert!(!alg.collect().is_empty());

        // Q1 answered at the post-U2 state, as ECA allows.
        alg.on_answer(q1.id, q1.query.eval(&db).unwrap()).unwrap();
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        assert_eq!(alg.local_updates(), 1);
        assert_eq!(alg.remote_updates(), 1);
    }

    #[test]
    fn reset_marks_auxes_stale_and_refresh_rebuilds_them() {
        let v = keyed_view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = seeded(&v, &db);

        // Resync: auxiliaries can no longer be trusted.
        alg.reset_to(v.eval(&db).unwrap()).unwrap();
        assert!(alg.is_quiescent());

        // Next update: rides the fallback, plus one rebuild query per
        // stale auxiliary. The compensating query itself is remote.
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u);
        let out = alg.on_update(&u).unwrap();
        assert_eq!(out.len(), 3, "2 rebuilds + 1 compensating query");
        assert!(!alg.is_quiescent());

        // Answer everything at the current source state (single-relation
        // projections for the rebuilds, the view delta for the rest).
        for q in out {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());

        // Auxiliaries are fresh again: the next update is local.
        let u2 = Update::insert("r1", Tuple::ints([9, 2]));
        db.apply(&u2);
        assert!(alg.on_update(&u2).unwrap().is_empty());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    #[test]
    fn cold_start_without_base_snapshot_rebuilds_lazily() {
        let v = keyed_view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = EcaAux::new(v.clone(), v.eval(&db).unwrap());

        let u = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u);
        let out = alg.on_update(&u).unwrap();
        assert_eq!(out.len(), 3);
        for q in out {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());

        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u2);
        assert!(
            alg.on_update(&u2).unwrap().is_empty(),
            "now self-maintained"
        );
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    #[test]
    fn self_join_views_are_never_covered() {
        let v = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["A", "B"], &["A"]).unwrap(),
                Schema::with_key("r1", &["A", "B"], &["A"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap();
        let db = BaseDb::for_view(&v);
        let alg = seeded(&v, &db);
        assert_eq!(alg.coverage(), vec![false, false]);
    }

    #[test]
    fn stats_report_locality_and_residency() {
        let v = keyed_view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = seeded(&v, &db);
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u);
        alg.on_update(&u).unwrap();
        let stats = alg.selfmaint_stats().unwrap();
        assert_eq!(stats.local_updates, 1);
        assert_eq!(stats.remote_updates, 0);
        assert_eq!(stats.aux_tuples, 2, "r1 tuple + the new r2 tuple");
        assert!(stats.aux_bytes > 0);
        assert_eq!(stats.auxiliaries.len(), 2);
    }

    #[test]
    fn selection_condition_still_applies_locally() {
        // A comparison selection over retained columns must survive the
        // remap.
        let v = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X", "P"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Z"], &["Z"]).unwrap(),
            ],
            Predicate::col_eq(1, 3).and(Predicate::col_cmp(0, CmpOp::Gt, 4)),
            vec![0, 4],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([10, 2, 111]));
        db.insert("r1", Tuple::ints([0, 2, 222]));
        let mut alg = seeded(&v, &db);
        let u = Update::insert("r2", Tuple::ints([2, 5]));
        db.apply(&u);
        assert!(alg.on_update(&u).unwrap().is_empty());
        // Only W=10 > Z=5 qualifies.
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        assert_eq!(alg.materialized().count(&Tuple::ints([10, 5])), 1);
        assert_eq!(alg.materialized().count(&Tuple::ints([0, 5])), 0);
    }
}
