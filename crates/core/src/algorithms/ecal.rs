//! The ECA-Local algorithm (paper §5.5).
//!
//! ECAL combines ECA's compensation with *local* handling of updates that
//! are autonomously computable at the warehouse (\[BLT86\]'s terminology).
//! The paper leaves the general algorithm as future work because ordering
//! local updates against in-flight compensated answers is intricate; it
//! names the building blocks, which we implement for the view classes
//! where local handling is provably safe:
//!
//! * **Single-relation views** `V = π(σ(r1))`: *every* update is
//!   autonomously computable — `V⟨U⟩ = π(σ(±t))` mentions no base
//!   relation, so it is evaluated locally with zero messages and zero
//!   anomaly exposure. MV is updated immediately; no buffering is needed
//!   because no queries are ever outstanding.
//! * **Fully keyed multi-relation views**: deletions are handled locally
//!   with `key-delete` and insertions with uncompensated queries — i.e.
//!   the ECA-Key algorithm (§5.4), which is the keyed instance of ECAL.
//! * **All other views**: fall back to full ECA compensation.
//!
//! This dispatch is decided once at construction from the view definition.

use eca_relational::algebra::{project, select};
use eca_relational::{SignedBag, SignedTuple, Update};

use crate::algorithms::{Eca, EcaKey};
use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, ViewMaintainer};
use crate::view::ViewDef;

enum Inner {
    /// Single-relation view: all updates local.
    SingleRelation { view: ViewDef, mv: SignedBag },
    /// Fully keyed view: ECA-Key.
    Keyed(EcaKey),
    /// General view: ECA.
    General(Eca),
}

/// The ECA-Local maintainer.
pub struct EcaLocal {
    inner: Inner,
}

/// Which local-handling mode a view admits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalMode {
    /// All updates handled locally (single-relation view).
    AllLocal,
    /// Deletions local, insertions queried (fully keyed view).
    DeletesLocal,
    /// Nothing local; full ECA compensation.
    NoneLocal,
}

impl EcaLocal {
    /// Create with `initial = V[ss0]`, choosing the local-handling mode
    /// from the view shape.
    pub fn new(view: ViewDef, initial: SignedBag) -> Self {
        let inner = if view.base().len() == 1 {
            Inner::SingleRelation { view, mv: initial }
        } else if view.is_fully_keyed() && !view.has_repeated_relations() {
            Inner::Keyed(EcaKey::new(view, initial).expect("checked is_fully_keyed"))
        } else {
            Inner::General(Eca::new(view, initial))
        };
        EcaLocal { inner }
    }

    /// The local-handling mode selected for this view.
    pub fn mode(&self) -> LocalMode {
        match &self.inner {
            Inner::SingleRelation { .. } => LocalMode::AllLocal,
            Inner::Keyed(_) => LocalMode::DeletesLocal,
            Inner::General(_) => LocalMode::NoneLocal,
        }
    }

    /// `V⟨U⟩` for a single-relation view, computed locally: apply the
    /// selection and projection to the signed updated tuple.
    fn local_delta(view: &ViewDef, st: &SignedTuple) -> Result<SignedBag, CoreError> {
        let mut bag = SignedBag::new();
        bag.add(st.tuple.clone(), st.sign.factor());
        let selected = select(&bag, view.cond())?;
        Ok(project(&selected, view.proj())?)
    }
}

impl ViewMaintainer for EcaLocal {
    fn algorithm(&self) -> &'static str {
        "ECA-Local"
    }

    fn view(&self) -> &ViewDef {
        match &self.inner {
            Inner::SingleRelation { view, .. } => view,
            Inner::Keyed(k) => k.view(),
            Inner::General(e) => e.view(),
        }
    }

    fn materialized(&self) -> &SignedBag {
        match &self.inner {
            Inner::SingleRelation { mv, .. } => mv,
            Inner::Keyed(k) => k.materialized(),
            Inner::General(e) => e.materialized(),
        }
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        match &mut self.inner {
            Inner::SingleRelation { view, mv } => {
                if !view.involves(update) {
                    return Ok(Vec::new());
                }
                let delta = Self::local_delta(view, &update.signed_tuple())?;
                mv.merge(&delta);
                Ok(Vec::new())
            }
            Inner::Keyed(k) => k.on_update(update),
            Inner::General(e) => e.on_update(update),
        }
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        match &mut self.inner {
            Inner::SingleRelation { .. } => Err(CoreError::UnknownQuery { id: id.0 }),
            Inner::Keyed(k) => k.on_answer(id, answer),
            Inner::General(e) => e.on_answer(id, answer),
        }
    }

    fn is_quiescent(&self) -> bool {
        match &self.inner {
            Inner::SingleRelation { .. } => true,
            Inner::Keyed(k) => k.is_quiescent(),
            Inner::General(e) => e.is_quiescent(),
        }
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        match &mut self.inner {
            Inner::SingleRelation { mv, .. } => {
                *mv = state;
                Ok(())
            }
            Inner::Keyed(k) => k.reset_to(state),
            Inner::General(e) => e.reset_to(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{CmpOp, Predicate, Schema, Tuple};

    fn single_rel_view() -> ViewDef {
        // V = π_A(σ_{A < B}(r1(A,B)))
        ViewDef::new(
            "V",
            vec![Schema::new("r1", &["A", "B"])],
            Predicate::col_cmp(0, CmpOp::Lt, 1),
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn mode_selection() {
        assert_eq!(
            EcaLocal::new(single_rel_view(), SignedBag::new()).mode(),
            LocalMode::AllLocal
        );

        let keyed = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap();
        assert_eq!(
            EcaLocal::new(keyed, SignedBag::new()).mode(),
            LocalMode::DeletesLocal
        );

        let general = ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        assert_eq!(
            EcaLocal::new(general, SignedBag::new()).mode(),
            LocalMode::NoneLocal
        );
    }

    #[test]
    fn single_relation_updates_are_local_and_exact() {
        let v = single_rel_view();
        let mut db = BaseDb::for_view(&v);
        let mut alg = EcaLocal::new(v.clone(), SignedBag::new());

        let script = [
            Update::insert("r1", Tuple::ints([1, 5])), // passes σ
            Update::insert("r1", Tuple::ints([9, 2])), // filtered out
            Update::insert("r1", Tuple::ints([1, 5])), // duplicate
            Update::delete("r1", Tuple::ints([1, 5])), // remove one copy
        ];
        for u in &script {
            db.apply(u);
            let qs = alg.on_update(u).unwrap();
            assert!(qs.is_empty(), "single-relation ECAL never queries");
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        }
        assert_eq!(alg.materialized().count(&Tuple::ints([1])), 1);
    }

    #[test]
    fn single_relation_rejects_answers() {
        let mut alg = EcaLocal::new(single_rel_view(), SignedBag::new());
        assert!(alg.on_answer(QueryId(1), SignedBag::new()).is_err());
        assert!(alg.is_quiescent());
    }

    #[test]
    fn general_fallback_compensates_like_eca() {
        // Replay Example 2; the general fallback must repair the anomaly.
        let v = ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = EcaLocal::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);
        assert_eq!(q2.query.terms().len(), 2, "compensation expected");
        alg.on_answer(q1.id, q1.query.eval(&db).unwrap()).unwrap();
        alg.on_answer(q2.id, q2.query.eval(&db).unwrap()).unwrap();
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    #[test]
    fn keyed_fallback_deletes_locally() {
        let v = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let mut alg = EcaLocal::new(v.clone(), v.eval(&db).unwrap());
        let u = Update::delete("r1", Tuple::ints([1, 2]));
        db.apply(&u);
        assert!(
            alg.on_update(&u).unwrap().is_empty(),
            "delete handled locally"
        );
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }
}
