//! Deferred view maintenance timing (paper §2).
//!
//! The paper assumes *immediate* update throughout but observes that
//! "with little or no modification our algorithms can be applied to
//! deferred and periodic update as well" (\[RK86\]'s deferred timing:
//! refresh only when the view is queried; \[LHM+86\]'s periodic timing:
//! refresh on a schedule).
//!
//! [`Deferred`] wraps any maintainer: update notifications are buffered,
//! and [`Deferred::refresh`] replays them into the inner algorithm in
//! arrival order — which preserves the in-order-delivery precondition the
//! inner algorithms rely on, so all their guarantees carry over to the
//! refresh points. Periodic maintenance is `refresh()` on a timer;
//! deferred maintenance is `refresh()` before serving a warehouse read.

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, ViewMaintainer};
use crate::view::ViewDef;

/// A maintainer whose update processing is deferred to refresh points.
pub struct Deferred<M: ViewMaintainer> {
    inner: M,
    buffer: Vec<Update>,
}

impl<M: ViewMaintainer> Deferred<M> {
    /// Wrap `inner`.
    pub fn new(inner: M) -> Self {
        Deferred {
            inner,
            buffer: Vec::new(),
        }
    }

    /// Updates awaiting the next refresh.
    pub fn deferred_len(&self) -> usize {
        self.buffer.len()
    }

    /// Replay all buffered updates into the inner algorithm, returning
    /// the queries it emits. Call before serving a read (deferred
    /// timing) or on a schedule (periodic timing).
    ///
    /// # Errors
    /// Propagates inner-algorithm errors.
    pub fn refresh(&mut self) -> Result<Vec<OutboundQuery>, CoreError> {
        let mut out = Vec::new();
        for u in std::mem::take(&mut self.buffer) {
            out.extend(self.inner.on_update(&u)?);
        }
        Ok(out)
    }

    /// The wrapped maintainer.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: ViewMaintainer> ViewMaintainer for Deferred<M> {
    fn algorithm(&self) -> &'static str {
        "Deferred"
    }

    fn view(&self) -> &ViewDef {
        self.inner.view()
    }

    fn materialized(&self) -> &SignedBag {
        self.inner.materialized()
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if self.inner.view().involves(update) {
            self.buffer.push(update.clone());
        }
        Ok(Vec::new())
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        self.inner.on_answer(id, answer)
    }

    fn is_quiescent(&self) -> bool {
        self.buffer.is_empty() && self.inner.is_quiescent()
    }

    fn drain_intermediate_states(&mut self) -> Vec<SignedBag> {
        self.inner.drain_intermediate_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Eca;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn updates_buffer_until_refresh() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Deferred::new(Eca::with_local_eval(v.clone(), SignedBag::new()));

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        db.apply(&u2);
        assert!(alg.on_update(&u1).unwrap().is_empty());
        assert!(alg.on_update(&u2).unwrap().is_empty());
        assert_eq!(alg.deferred_len(), 2);
        assert!(alg.materialized().is_empty(), "stale until refresh");
        assert!(!alg.is_quiescent());

        let queries = alg.refresh().unwrap();
        assert_eq!(alg.deferred_len(), 0);
        for q in &queries {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    #[test]
    fn refresh_preserves_update_order() {
        // Insert then delete of the same tuple must net out, which only
        // works if replay preserves arrival order.
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r2", Tuple::ints([2, 5]));
        let mut alg = Deferred::new(Eca::with_local_eval(v.clone(), SignedBag::new()));

        let ins = Update::insert("r1", Tuple::ints([1, 2]));
        let del = Update::delete("r1", Tuple::ints([1, 2]));
        db.apply(&ins);
        db.apply(&del);
        alg.on_update(&ins).unwrap();
        alg.on_update(&del).unwrap();

        let queries = alg.refresh().unwrap();
        for q in &queries {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert!(alg.materialized().is_empty());
    }

    #[test]
    fn irrelevant_updates_not_buffered() {
        let mut alg = Deferred::new(Eca::new(view2(), SignedBag::new()));
        alg.on_update(&Update::insert("other", Tuple::ints([1])))
            .unwrap();
        assert_eq!(alg.deferred_len(), 0);
        assert!(alg.is_quiescent());
    }

    #[test]
    fn multiple_refresh_cycles() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Deferred::new(Eca::with_local_eval(v.clone(), SignedBag::new()));

        for round in 0..3i64 {
            let u = Update::insert("r2", Tuple::ints([2, 10 + round]));
            db.apply(&u);
            alg.on_update(&u).unwrap();
            let queries = alg.refresh().unwrap();
            for q in &queries {
                alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
            }
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap(), "round {round}");
        }
    }
}
