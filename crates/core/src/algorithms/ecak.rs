//! The ECA-Key algorithm (paper §5.4).
//!
//! Applicable when the view contains a key of *every* base relation. Then:
//!
//! 1. `COLLECT` is a **working copy** of `MV`, not a delta buffer.
//! 2. Deletions are handled locally with `key-delete` — no source query.
//! 3. Insertions query the source with plain `V⟨U⟩` — no compensation.
//! 4. Answers merge into `COLLECT` with **duplicate suppression**: a keyed
//!    view cannot contain duplicates, so any duplicate is an anomaly echo
//!    and is ignored.
//! 5. When `UQS = ∅`, `MV ← COLLECT` (COLLECT is *not* reset).

use std::collections::BTreeSet;

use eca_relational::{SignedBag, Update, UpdateKind, Value};

use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};
use crate::view::ViewDef;

/// A key-delete that must also be applied to answers of queries that were
/// in flight when the delete was processed.
///
/// The paper's Case II(a) proof argues that a query evaluated after a
/// delete "does not see one of the key values" — true when the key would
/// come from a base relation, but an in-flight insert query carries its
/// tuple *bound*, so the source reproduces the deleted key regardless of
/// base state. Tombstones close that gap: while `UQS ≠ ∅`, each local
/// key-delete is remembered and filtered out of answers to queries issued
/// before it.
struct Tombstone {
    rel_idx: usize,
    key_values: Vec<Value>,
    /// Applies to answers of queries with id ≤ this (sent before the
    /// delete was processed).
    applies_to_max: u64,
}

/// The ECA-Key maintainer. Construction fails unless the view is fully
/// keyed.
pub struct EcaKey {
    view: ViewDef,
    mv: SignedBag,
    collect: SignedBag,
    uqs: BTreeSet<QueryId>,
    ids: QueryIdGen,
    /// Per base relation, positions in the view output of its key columns.
    key_positions: Vec<Vec<usize>>,
    /// Key-deletes pending against in-flight answers.
    tombstones: Vec<Tombstone>,
    /// Highest query id issued so far.
    last_issued: u64,
}

impl EcaKey {
    /// Create with `initial = V[ss0]`.
    ///
    /// # Errors
    /// [`CoreError::ViewNotKeyed`] unless the view contains a key of every
    /// base relation.
    pub fn new(view: ViewDef, initial: SignedBag) -> Result<Self, CoreError> {
        if view.has_repeated_relations() {
            // Key-deletes identify derivations per relation occurrence;
            // the streamlining is only proven for distinct relations.
            return Err(CoreError::DuplicateBaseRelation {
                relation: view.name().to_owned(),
            });
        }
        let key_positions: Option<Vec<Vec<usize>>> = (0..view.base().len())
            .map(|i| view.key_view_positions(i))
            .collect();
        let key_positions = key_positions.ok_or_else(|| CoreError::ViewNotKeyed {
            view: view.name().to_owned(),
        })?;
        Ok(EcaKey {
            collect: initial.clone(),
            mv: initial,
            view,
            uqs: BTreeSet::new(),
            ids: QueryIdGen::new(),
            key_positions,
            tombstones: Vec::new(),
            last_issued: 0,
        })
    }

    /// The working copy (exposed for traces and tests).
    pub fn collect(&self) -> &SignedBag {
        &self.collect
    }

    /// `key-delete(COLLECT, r, t)`: remove every view tuple whose values at
    /// relation `r`'s key positions equal `t`'s key values (paper §5.4).
    fn key_delete(&mut self, rel_idx: usize, key_values: &[Value]) -> usize {
        let positions = self.key_positions[rel_idx].clone();
        self.collect.remove_where(|tuple| {
            positions
                .iter()
                .zip(key_values)
                .all(|(&p, kv)| tuple.get(p) == Some(kv))
        })
    }

    fn install_if_quiescent(&mut self) {
        if self.uqs.is_empty() {
            // MV ← COLLECT; COLLECT stays as the working copy.
            self.mv = self.collect.clone();
        }
    }
}

impl ViewMaintainer for EcaKey {
    fn algorithm(&self) -> &'static str {
        "ECA-Key"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        let Some(rel_idx) = self.view.relation_index(&update.relation) else {
            return Ok(Vec::new());
        };
        match update.kind {
            UpdateKind::Delete => {
                // Local key-delete; no source query (paper §5.4 point 2).
                let key_values: Vec<Value> = self
                    .view
                    .update_key_values(update)
                    .expect("fully keyed view must yield key values");
                self.key_delete(rel_idx, &key_values);
                if !self.uqs.is_empty() {
                    // In-flight answers may still carry this key (their
                    // bound tuples reproduce it); remember to filter.
                    self.tombstones.push(Tombstone {
                        rel_idx,
                        key_values,
                        applies_to_max: self.last_issued,
                    });
                }
                self.install_if_quiescent();
                Ok(Vec::new())
            }
            UpdateKind::Insert => {
                // Plain V⟨U⟩ — no compensating queries (point 3).
                let query = self.view.substitute(update)?;
                let id = self.ids.fresh();
                self.last_issued = id.0;
                self.uqs.insert(id);
                Ok(vec![OutboundQuery { id, query }])
            }
        }
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.uqs.remove(&id) {
            return Err(CoreError::UnknownQuery { id: id.0 });
        }
        // Filter tuples deleted locally while this query was in flight.
        let mut answer = answer;
        for tomb in self.tombstones.iter().filter(|t| t.applies_to_max >= id.0) {
            let positions = &self.key_positions[tomb.rel_idx];
            answer.remove_where(|tuple| {
                positions
                    .iter()
                    .zip(&tomb.key_values)
                    .all(|(&p, kv)| tuple.get(p) == Some(kv))
            });
        }
        // Merge with duplicate suppression (point 4).
        self.collect.merge_distinct(&answer);
        if self.uqs.is_empty() {
            self.tombstones.clear();
        }
        self.install_if_quiescent();
        Ok(Vec::new())
    }

    fn is_quiescent(&self) -> bool {
        self.uqs.is_empty()
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        // RV-style resync: both MV and the COLLECT working copy become
        // V(ss); pending queries and tombstones are obsolete because the
        // recomputed state already reflects every in-flight update.
        self.collect = state.clone();
        self.mv = state;
        self.uqs.clear();
        self.tombstones.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    /// V = π_{W,Y}(r1 ⋈ r2) with W key of r1 and Y key of r2.
    fn keyed_view() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap()
    }

    #[test]
    fn rejects_unkeyed_views() {
        let v = ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        assert!(matches!(
            EcaKey::new(v, SignedBag::new()),
            Err(CoreError::ViewNotKeyed { .. })
        ));
    }

    /// Paper Example 3 revisited with keys (§1.2 ECAK discussion): both
    /// deletions handled locally, final view empty and correct.
    #[test]
    fn example_3_deletes_handled_locally() {
        let v = keyed_view();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let mut alg = EcaKey::new(v.clone(), v.eval(&db).unwrap()).unwrap();
        assert_eq!(alg.materialized().count(&Tuple::ints([1, 3])), 1);

        let u1 = Update::delete("r1", Tuple::ints([1, 2]));
        let u2 = Update::delete("r2", Tuple::ints([2, 3]));
        db.apply(&u1);
        assert!(
            alg.on_update(&u1).unwrap().is_empty(),
            "no query for deletes"
        );
        db.apply(&u2);
        assert!(alg.on_update(&u2).unwrap().is_empty());

        assert!(alg.materialized().is_empty());
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// Paper Example 5: two inserts and one delete, all before any answer.
    #[test]
    fn example_5_full_trace() {
        let v = keyed_view();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let mut alg = EcaKey::new(v.clone(), v.eval(&db).unwrap()).unwrap();
        assert_eq!(
            *alg.materialized(),
            SignedBag::from_tuples([Tuple::ints([1, 3])])
        );

        let u1 = Update::insert("r2", Tuple::ints([2, 4]));
        let u2 = Update::insert("r1", Tuple::ints([3, 2]));
        let u3 = Update::delete("r1", Tuple::ints([1, 2]));

        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        assert_eq!(q1.query.terms().len(), 1, "no compensation in ECAK");
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);
        db.apply(&u3);
        assert!(alg.on_update(&u3).unwrap().is_empty());
        // key-delete removed [1,3] from COLLECT immediately.
        assert!(alg.collect().count(&Tuple::ints([1, 3])) == 0);
        // MV not yet updated: UQS nonempty.
        assert_eq!(alg.materialized().count(&Tuple::ints([1, 3])), 1);

        // A1 evaluated on the final source state: ([3,4]).
        let a1 = q1.query.eval(&db).unwrap();
        assert_eq!(a1, SignedBag::from_tuples([Tuple::ints([3, 4])]));
        alg.on_answer(q1.id, a1).unwrap();

        // A2 = ([3,3],[3,4]); the duplicate [3,4] is suppressed.
        let a2 = q2.query.eval(&db).unwrap();
        assert_eq!(
            a2,
            SignedBag::from_tuples([Tuple::ints([3, 3]), Tuple::ints([3, 4])])
        );
        alg.on_answer(q2.id, a2).unwrap();

        let expected = SignedBag::from_tuples([Tuple::ints([3, 3]), Tuple::ints([3, 4])]);
        assert_eq!(*alg.materialized(), expected);
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        // No duplicate [3,4] despite it arriving twice.
        assert_eq!(alg.materialized().count(&Tuple::ints([3, 4])), 1);
    }

    /// Spaced updates: ECAK behaves like the basic algorithm for inserts.
    #[test]
    fn spaced_inserts_are_exact() {
        let v = keyed_view();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = EcaKey::new(v.clone(), SignedBag::new()).unwrap();
        for i in 0..4 {
            let u = Update::insert("r2", Tuple::ints([2, 10 + i]));
            db.apply(&u);
            let q = alg.on_update(&u).unwrap().remove(0);
            let a = q.query.eval(&db).unwrap();
            alg.on_answer(q.id, a).unwrap();
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        }
    }

    #[test]
    fn irrelevant_updates_ignored() {
        let v = keyed_view();
        let mut alg = EcaKey::new(v, SignedBag::new()).unwrap();
        assert!(alg
            .on_update(&Update::delete("zz", Tuple::ints([1])))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unknown_answer_rejected() {
        let v = keyed_view();
        let mut alg = EcaKey::new(v, SignedBag::new()).unwrap();
        assert!(alg.on_answer(QueryId(5), SignedBag::new()).is_err());
    }

    /// A delete that races the in-flight query of the *same tuple's*
    /// insert: the answer carries the deleted key (it is bound in the
    /// query), and the tombstone must filter it out.
    #[test]
    fn delete_racing_own_inserts_query() {
        let v = keyed_view();
        let mut db = BaseDb::for_view(&v);
        db.insert("r2", Tuple::ints([2, 9]));
        let mut alg = EcaKey::new(v.clone(), SignedBag::new()).unwrap();

        let ins = Update::insert("r1", Tuple::ints([1, 2]));
        let del = Update::delete("r1", Tuple::ints([1, 2]));
        db.apply(&ins);
        let q = alg.on_update(&ins).unwrap().remove(0);
        db.apply(&del);
        assert!(alg.on_update(&del).unwrap().is_empty());

        // The source evaluates Q after the delete — but the bound tuple
        // [1,2] still joins r2, so the raw answer contains [1,9].
        let a = q.query.eval(&db).unwrap();
        assert_eq!(a, SignedBag::from_tuples([Tuple::ints([1, 9])]));
        alg.on_answer(q.id, a).unwrap();

        // Without tombstones the phantom [1,9] would survive.
        assert!(
            alg.materialized().is_empty(),
            "phantom tuple: {:?}",
            alg.materialized()
        );
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// A re-insert of the same key after a delete must NOT be filtered:
    /// tombstones only apply to queries issued before the delete.
    #[test]
    fn tombstone_does_not_affect_later_reinsert() {
        let v = keyed_view();
        let mut db = BaseDb::for_view(&v);
        db.insert("r2", Tuple::ints([2, 8]));
        db.insert("r2", Tuple::ints([3, 9]));
        let mut alg = EcaKey::new(v.clone(), SignedBag::new()).unwrap();

        let u1 = Update::insert("r1", Tuple::ints([1, 2]));
        let u2 = Update::delete("r1", Tuple::ints([1, 2]));
        let u3 = Update::insert("r1", Tuple::ints([1, 3])); // same key, new join
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        assert!(alg.on_update(&u2).unwrap().is_empty());
        db.apply(&u3);
        let q3 = alg.on_update(&u3).unwrap().remove(0);

        // Both answers evaluated on the final state.
        alg.on_answer(q1.id, q1.query.eval(&db).unwrap()).unwrap();
        alg.on_answer(q3.id, q3.query.eval(&db).unwrap()).unwrap();

        // [1,8] (from the deleted insert) is filtered; [1,9] (from the
        // re-insert) survives.
        assert_eq!(
            *alg.materialized(),
            SignedBag::from_tuples([Tuple::ints([1, 9])])
        );
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }
}
