//! Batch ECA (paper §7, future work: *"how ECA can be extended to handle
//! a set of updates at once … since in practice many source updates will
//! be 'batched', this extension should result in a very useful
//! performance enhancement"*).
//!
//! Batch ECA buffers update notifications and, every `batch_size`
//! updates, ships **one** query that is the sum of the per-update ECA
//! queries:
//!
//! ```text
//! q_i       = V⟨U_i⟩ − Σ_{Q ∈ UQS(at U_i)} Q⟨U_i⟩ − Σ_{l<i in batch} q_l⟨U_i⟩
//! Q_batch   = Σ_i q_i            (one message, one answer)
//! ```
//!
//! Each `q_i` is exactly the query eager ECA would have sent, including
//! compensation against both genuinely pending queries and earlier
//! batch-mates (whose sub-queries are evaluated at the same, later,
//! source state). Summing them is sound because answers are additive and
//! ECA installs `COLLECT` only at `UQS = ∅`; the message count drops from
//! `2k` to `2⌈k/n⌉`.
//!
//! Like RV with period `s`, convergence at the end of a run requires the
//! update count to be a multiple of `batch_size` (or an explicit
//! [`BatchEca::pending_batch_len`]-guided flush by the driver); a partial
//! trailing batch is buffered, not lost.

use std::collections::BTreeMap;

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::{Query, QueryId};
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};
use crate::view::ViewDef;

/// ECA with update batching.
pub struct BatchEca {
    view: ViewDef,
    mv: SignedBag,
    collect: SignedBag,
    uqs: BTreeMap<QueryId, Query>,
    ids: QueryIdGen,
    batch_size: usize,
    /// Per-update queries accumulated for the current batch.
    batch: Vec<Query>,
}

impl BatchEca {
    /// Create with `initial = V[ss0]`, shipping one query per
    /// `batch_size` updates. `batch_size = 1` degenerates to ECA with the
    /// Appendix-D.2 local-evaluation refinement.
    ///
    /// # Errors
    /// [`CoreError::InvalidRecomputePeriod`] when `batch_size == 0`.
    pub fn new(view: ViewDef, initial: SignedBag, batch_size: usize) -> Result<Self, CoreError> {
        if batch_size == 0 {
            return Err(CoreError::InvalidRecomputePeriod { period: 0 });
        }
        Ok(BatchEca {
            view,
            mv: initial,
            collect: SignedBag::new(),
            uqs: BTreeMap::new(),
            ids: QueryIdGen::new(),
            batch_size,
            batch: Vec::new(),
        })
    }

    /// Updates buffered toward the next batch flush.
    pub fn pending_batch_len(&self) -> usize {
        self.batch.len()
    }

    /// Flush the current (possibly partial) batch immediately. The driver
    /// can call this at the end of an update stream that is not a
    /// multiple of the batch size.
    ///
    /// # Errors
    /// Propagates evaluation errors from local terms.
    pub fn flush(&mut self) -> Result<Vec<OutboundQuery>, CoreError> {
        if self.batch.is_empty() {
            return Ok(Vec::new());
        }
        let mut terms = Vec::new();
        for q in self.batch.drain(..) {
            terms.extend(q.terms().iter().cloned());
        }
        // Appendix D.2: fully-bound terms never need the source.
        let (local, remote): (Vec<_>, Vec<_>) =
            terms.into_iter().partition(|t| t.unbound_count() == 0);
        if !local.is_empty() {
            let value = Query::from_terms(self.view.clone(), local).eval(&crate::BaseDb::new())?;
            self.collect.merge(&value);
        }
        if remote.is_empty() {
            if self.uqs.is_empty() {
                self.mv.merge(&self.collect);
                self.collect = SignedBag::new();
            }
            return Ok(Vec::new());
        }
        let query = Query::from_terms(self.view.clone(), remote);
        let id = self.ids.fresh();
        self.uqs.insert(id, query.clone());
        Ok(vec![OutboundQuery { id, query }])
    }
}

impl ViewMaintainer for BatchEca {
    fn algorithm(&self) -> &'static str {
        "Batch-ECA"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.view.involves(update) {
            return Ok(Vec::new());
        }
        // q_i: compensate against pending queries (UQS membership at this
        // moment, per ECA's rule) and against earlier batch-mates.
        let mut q = self.view.substitute(update)?;
        for pending in self.uqs.values() {
            q = q.minus(&pending.substitute(update));
        }
        for mate in &self.batch {
            q = q.minus(&mate.substitute(update));
        }
        self.batch.push(q);
        if self.batch.len() >= self.batch_size {
            self.flush()
        } else {
            Ok(Vec::new())
        }
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        if self.uqs.remove(&id).is_none() {
            return Err(CoreError::UnknownQuery { id: id.0 });
        }
        self.collect.merge(&answer);
        if self.uqs.is_empty() && self.batch.is_empty() {
            self.mv.merge(&self.collect);
            self.collect = SignedBag::new();
        }
        Ok(Vec::new())
    }

    fn is_quiescent(&self) -> bool {
        self.uqs.is_empty() && self.batch.is_empty()
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        // V(ss) already reflects both in-flight queries and buffered,
        // not-yet-flushed batch updates, so all three structures clear.
        self.mv = state;
        self.collect = SignedBag::new();
        self.uqs.clear();
        self.batch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn zero_batch_size_rejected() {
        assert!(BatchEca::new(view2(), SignedBag::new(), 0).is_err());
    }

    /// Example 2's anomalous interleaving, batched into one message.
    #[test]
    fn example_2_in_one_batch() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = BatchEca::new(v.clone(), SignedBag::new(), 2).unwrap();

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        assert!(alg.on_update(&u1).unwrap().is_empty(), "buffered");
        assert_eq!(alg.pending_batch_len(), 1);
        db.apply(&u2);
        let qs = alg.on_update(&u2).unwrap();
        assert_eq!(qs.len(), 1, "one coalesced query");
        // V⟨U1⟩ + V⟨U2⟩ shipped; the batch-mate compensation V⟨U1⟩⟨U2⟩ is
        // fully bound and evaluated locally.
        assert_eq!(qs[0].query.terms().len(), 2);

        let a = qs[0].query.eval(&db).unwrap();
        alg.on_answer(qs[0].id, a).unwrap();
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// Batch of 3 against a 3-relation view (Example 4's updates).
    #[test]
    fn example_4_in_one_batch() {
        let v = ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
                Schema::new("r3", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2).and(Predicate::col_eq(3, 4)),
            vec![0],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = BatchEca::new(v.clone(), SignedBag::new(), 3).unwrap();

        let updates = [
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::insert("r3", Tuple::ints([5, 3])),
            Update::insert("r2", Tuple::ints([2, 5])),
        ];
        let mut queries = Vec::new();
        for u in &updates {
            db.apply(u);
            queries.extend(alg.on_update(u).unwrap());
        }
        assert_eq!(queries.len(), 1, "2k messages collapse to 2");
        let a = queries[0].query.eval(&db).unwrap();
        alg.on_answer(queries[0].id, a).unwrap();
        assert_eq!(
            *alg.materialized(),
            SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])])
        );
    }

    /// Batches racing batches: the second batch's updates arrive while
    /// the first batch's query is still unanswered, so the second batch
    /// compensates the first.
    #[test]
    fn consecutive_batches_compensate() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = BatchEca::new(v.clone(), SignedBag::new(), 2).unwrap();

        let script = [
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r2", Tuple::ints([2, 4])),
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::delete("r2", Tuple::ints([2, 3])),
        ];
        let mut queries = Vec::new();
        for u in &script {
            db.apply(u);
            queries.extend(alg.on_update(u).unwrap());
        }
        assert_eq!(queries.len(), 2);
        // The second batch compensates the first, but those compensation
        // terms are fully bound (both tuples known) and are evaluated
        // locally — only the two unbound own-terms ship.
        assert_eq!(queries[1].query.terms().len(), 2);

        // All answers evaluated on the final state (worst case).
        for q in &queries {
            alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// A partial trailing batch is flushed explicitly.
    #[test]
    fn explicit_flush_of_partial_batch() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = BatchEca::new(v.clone(), SignedBag::new(), 10).unwrap();

        let u = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u);
        assert!(alg.on_update(&u).unwrap().is_empty());
        assert!(!alg.is_quiescent(), "buffered update outstanding");
        let qs = alg.flush().unwrap();
        assert_eq!(qs.len(), 1);
        alg.on_answer(qs[0].id, qs[0].query.eval(&db).unwrap())
            .unwrap();
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        assert!(alg.flush().unwrap().is_empty(), "nothing left");
    }

    /// Batch size 1 behaves exactly like optimized ECA.
    #[test]
    fn batch_size_one_equals_eca() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut batch = BatchEca::new(v.clone(), SignedBag::new(), 1).unwrap();
        let mut eca = crate::algorithms::Eca::with_local_eval(v.clone(), SignedBag::new());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        let b1 = batch.on_update(&u1).unwrap().remove(0);
        let e1 = eca.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let b2 = batch.on_update(&u2).unwrap().remove(0);
        let e2 = eca.on_update(&u2).unwrap().remove(0);
        assert_eq!(b1.query.terms(), e1.query.terms());
        assert_eq!(b2.query.terms(), e2.query.terms());

        for (alg, qs) in [
            (&mut batch as &mut dyn ViewMaintainer, [&b1, &b2]),
            (&mut eca as &mut dyn ViewMaintainer, [&e1, &e2]),
        ] {
            for q in qs {
                alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
            }
        }
        assert_eq!(batch.materialized(), eca.materialized());
    }

    #[test]
    fn unknown_answer_rejected() {
        let mut alg = BatchEca::new(view2(), SignedBag::new(), 2).unwrap();
        assert!(alg.on_answer(QueryId(9), SignedBag::new()).is_err());
    }
}
