//! The Recompute-View strategy (paper §1.2 and Algorithm D.1).
//!
//! Every `s`-th update, the warehouse asks the source to evaluate the full
//! view expression and *replaces* `MV` with the answer. Because the source
//! evaluates the view atomically on its current state, every installed
//! state is a valid source view state, so RV is strongly consistent — at
//! the price of shipping the entire view each time.

use std::collections::BTreeSet;

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};
use crate::view::ViewDef;

/// The periodic-recompute maintainer.
pub struct RecomputeView {
    view: ViewDef,
    mv: SignedBag,
    period: u64,
    count: u64,
    uqs: BTreeSet<QueryId>,
    ids: QueryIdGen,
}

impl RecomputeView {
    /// Create with recompute period `s ≥ 1` (Algorithm D.1's `s`).
    ///
    /// # Errors
    /// [`CoreError::InvalidRecomputePeriod`] when `period == 0`.
    pub fn new(view: ViewDef, initial: SignedBag, period: u64) -> Result<Self, CoreError> {
        if period == 0 {
            return Err(CoreError::InvalidRecomputePeriod { period });
        }
        Ok(RecomputeView {
            view,
            mv: initial,
            period,
            count: 0,
            uqs: BTreeSet::new(),
            ids: QueryIdGen::new(),
        })
    }

    /// The recompute period `s`.
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl ViewMaintainer for RecomputeView {
    fn algorithm(&self) -> &'static str {
        "RV"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.view.involves(update) {
            return Ok(Vec::new());
        }
        self.count += 1;
        if self.count % self.period != 0 {
            return Ok(Vec::new());
        }
        let id = self.ids.fresh();
        self.uqs.insert(id);
        Ok(vec![OutboundQuery {
            id,
            query: self.view.as_query(),
        }])
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.uqs.remove(&id) {
            return Err(CoreError::UnknownQuery { id: id.0 });
        }
        // MV ← A_i (replace, not merge — Algorithm D.1).
        self.mv = answer;
        Ok(Vec::new())
    }

    fn is_quiescent(&self) -> bool {
        self.uqs.is_empty()
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        // A resync is exactly one unscheduled recompute installation.
        self.mv = state;
        self.uqs.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn period_zero_rejected() {
        assert!(RecomputeView::new(view2(), SignedBag::new(), 0).is_err());
    }

    /// Paper §1.2: recomputing after U2 in Example 2 yields the correct
    /// view.
    #[test]
    fn example_2_fixed_by_recompute() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        // Recompute every 2 updates.
        let mut alg = RecomputeView::new(v.clone(), SignedBag::new(), 2).unwrap();

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        assert!(alg.on_update(&u1).unwrap().is_empty(), "skipped by period");
        db.apply(&u2);
        let q = alg.on_update(&u2).unwrap().remove(0);
        let a = q.query.eval(&db).unwrap();
        alg.on_answer(q.id, a).unwrap();

        assert_eq!(
            *alg.materialized(),
            SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])])
        );
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    #[test]
    fn period_one_recomputes_every_update() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = RecomputeView::new(v.clone(), SignedBag::new(), 1).unwrap();
        for i in 0..3 {
            let u = Update::insert("r2", Tuple::ints([2, i]));
            db.apply(&u);
            let q = alg.on_update(&u).unwrap().remove(0);
            let a = q.query.eval(&db).unwrap();
            alg.on_answer(q.id, a).unwrap();
            assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
        }
    }

    #[test]
    fn replace_semantics_not_merge() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        // Start with a wrong MV: replacement must discard it.
        let wrong = SignedBag::from_tuples([Tuple::ints([9])]);
        let mut alg = RecomputeView::new(v.clone(), wrong, 1).unwrap();
        let u = Update::insert("r2", Tuple::ints([2, 4]));
        db.apply(&u);
        let q = alg.on_update(&u).unwrap().remove(0);
        alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
        assert_eq!(alg.materialized().count(&Tuple::ints([9])), 0);
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }
}
