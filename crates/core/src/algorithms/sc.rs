//! The Store-Copies strategy (paper §1.2).
//!
//! The warehouse keeps up-to-date replicas of all base relations used in
//! its views. Every maintenance query is evaluated *locally* against the
//! replicas, so no anomaly can arise and no query is ever sent to the
//! source. The costs are warehouse storage for all base data and the work
//! of keeping replicas current.
//!
//! Because update notifications arrive in source order, the replicas pass
//! through exactly the source states `ss_0, ss_1, …`, and `MV` is updated
//! incrementally with `V⟨U_i⟩` evaluated on `ss_i` (Lemma B.2 gives
//! `V[ss_i] = V[ss_{i-1}] + V⟨U_i⟩[ss_i]`) — so SC is complete.

use eca_relational::{SignedBag, Update, UpdateKind};

use crate::basedb::{BaseDb, BaseLookup};
use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, ViewMaintainer};
use crate::view::ViewDef;

/// The store-copies maintainer.
pub struct StoreCopies {
    view: ViewDef,
    mv: SignedBag,
    replicas: BaseDb,
}

impl StoreCopies {
    /// Create with `initial = V[ss0]` and empty replicas.
    ///
    /// Use [`StoreCopies::with_replicas`] when the source starts non-empty.
    pub fn new(view: ViewDef, initial: SignedBag) -> Self {
        let replicas = BaseDb::for_view(&view);
        StoreCopies {
            view,
            mv: initial,
            replicas,
        }
    }

    /// Create with pre-seeded replicas matching the source's initial state.
    pub fn with_replicas(view: ViewDef, initial: SignedBag, replicas: BaseDb) -> Self {
        StoreCopies {
            view,
            mv: initial,
            replicas,
        }
    }

    /// The replicated base relations (exposed for storage-cost accounting).
    pub fn replicas(&self) -> &BaseDb {
        &self.replicas
    }
}

impl ViewMaintainer for StoreCopies {
    fn algorithm(&self) -> &'static str {
        "SC"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.view.involves(update) {
            return Ok(Vec::new());
        }
        // Guard against ineffective deletes so replicas never go negative.
        if update.kind == UpdateKind::Delete
            && self
                .replicas
                .bag(&update.relation)
                .map_or(true, |b| b.count(&update.tuple) <= 0)
        {
            return Ok(Vec::new());
        }
        self.replicas.apply(update);
        // Δ = V⟨U⟩ evaluated on the replicas *after* applying U: all other
        // relations are at the current state, U's relation is replaced by
        // the signed tuple.
        let delta = self.view.substitute(update)?.eval(&self.replicas)?;
        self.mv.merge(&delta);
        Ok(Vec::new())
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        _answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        // SC never sends queries.
        Err(CoreError::UnknownQuery { id: id.0 })
    }

    fn is_quiescent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    /// A bare `V(ss)` answer cannot restore the base-relation replicas,
    /// so SC refuses the RV-style resync (trait default).
    #[test]
    fn resync_unsupported() {
        let mut alg = StoreCopies::with_replicas(view2(), SignedBag::new(), BaseDb::new());
        assert!(matches!(
            alg.reset_to(SignedBag::new()),
            Err(CoreError::ResyncUnsupported { algorithm: "SC" })
        ));
    }

    /// Example 2's interleaving is harmless under SC: queries are local.
    #[test]
    fn example_2_no_anomaly() {
        let v = view2();
        let mut source = BaseDb::for_view(&v);
        source.insert("r1", Tuple::ints([1, 2]));
        let mut alg = StoreCopies::with_replicas(v.clone(), SignedBag::new(), source.clone());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        source.apply(&u1);
        alg.on_update(&u1).unwrap();
        // Already correct after U1 — completeness.
        assert_eq!(*alg.materialized(), v.eval(&source).unwrap());
        source.apply(&u2);
        alg.on_update(&u2).unwrap();
        assert_eq!(
            *alg.materialized(),
            SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])])
        );
    }

    #[test]
    fn deletions_tracked_exactly() {
        let v = view2();
        let mut source = BaseDb::for_view(&v);
        source.insert("r1", Tuple::ints([1, 2]));
        source.insert("r2", Tuple::ints([2, 3]));
        let mut alg =
            StoreCopies::with_replicas(v.clone(), v.eval(&source).unwrap(), source.clone());

        for u in [
            Update::delete("r1", Tuple::ints([1, 2])),
            Update::delete("r2", Tuple::ints([2, 3])),
        ] {
            source.apply(&u);
            alg.on_update(&u).unwrap();
            assert_eq!(*alg.materialized(), v.eval(&source).unwrap());
        }
        assert!(alg.materialized().is_empty());
    }

    #[test]
    fn ineffective_delete_is_noop() {
        let v = view2();
        let mut alg = StoreCopies::new(v, SignedBag::new());
        let u = Update::delete("r1", Tuple::ints([9, 9]));
        assert!(alg.on_update(&u).unwrap().is_empty());
        assert!(alg.materialized().is_empty());
        assert_eq!(alg.replicas().total_cardinality(), 0);
    }

    #[test]
    fn never_sends_or_accepts_queries() {
        let v = view2();
        let mut alg = StoreCopies::new(v, SignedBag::new());
        let qs = alg
            .on_update(&Update::insert("r1", Tuple::ints([1, 2])))
            .unwrap();
        assert!(qs.is_empty());
        assert!(alg.on_answer(QueryId(1), SignedBag::new()).is_err());
        assert!(alg.is_quiescent());
    }

    #[test]
    fn duplicate_handling_in_replicas() {
        let v = view2();
        let mut source = BaseDb::for_view(&v);
        source.insert("r2", Tuple::ints([2, 3]));
        let mut alg = StoreCopies::with_replicas(v.clone(), SignedBag::new(), source.clone());
        // Insert the same r1 tuple twice: view gains two copies.
        for _ in 0..2 {
            let u = Update::insert("r1", Tuple::ints([1, 2]));
            source.apply(&u);
            alg.on_update(&u).unwrap();
        }
        assert_eq!(alg.materialized().count(&Tuple::ints([1])), 2);
        // Delete one copy: one view copy goes away.
        let u = Update::delete("r1", Tuple::ints([1, 2]));
        source.apply(&u);
        alg.on_update(&u).unwrap();
        assert_eq!(alg.materialized().count(&Tuple::ints([1])), 1);
        assert_eq!(*alg.materialized(), v.eval(&source).unwrap());
    }
}
