//! The basic incremental view maintenance algorithm (paper Alg. 5.1),
//! adapted from \[BLT86\] to the warehousing environment.
//!
//! On update `U_i` the warehouse sends `Q_i = V⟨U_i⟩`; on answer `A_i` it
//! applies `MV ← MV + A_i`. Correct in a centralized setting, but in the
//! decoupled warehouse environment queries are evaluated on *later* source
//! states, so this algorithm is neither convergent nor weakly consistent
//! (paper Examples 2 and 3). It is implemented as the anomalous baseline.

use eca_relational::{SignedBag, Update};

use crate::error::CoreError;
use crate::expr::QueryId;
use crate::maintainer::{OutboundQuery, QueryIdGen, ViewMaintainer};
use crate::view::ViewDef;

/// The anomalous baseline maintainer.
pub struct Basic {
    view: ViewDef,
    mv: SignedBag,
    ids: QueryIdGen,
    pending: std::collections::BTreeSet<QueryId>,
}

impl Basic {
    /// Create with `initial` as the starting materialized state.
    pub fn new(view: ViewDef, initial: SignedBag) -> Self {
        Basic {
            view,
            mv: initial,
            ids: QueryIdGen::new(),
            pending: Default::default(),
        }
    }
}

impl ViewMaintainer for Basic {
    fn algorithm(&self) -> &'static str {
        "Basic"
    }

    fn view(&self) -> &ViewDef {
        &self.view
    }

    fn materialized(&self) -> &SignedBag {
        &self.mv
    }

    fn on_update(&mut self, update: &Update) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.view.involves(update) {
            return Ok(Vec::new());
        }
        let query = self.view.substitute(update)?;
        let id = self.ids.fresh();
        self.pending.insert(id);
        Ok(vec![OutboundQuery { id, query }])
    }

    fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, CoreError> {
        if !self.pending.remove(&id) {
            return Err(CoreError::UnknownQuery { id: id.0 });
        }
        self.mv.merge(&answer);
        Ok(Vec::new())
    }

    fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
    }

    fn reset_to(&mut self, state: SignedBag) -> Result<(), CoreError> {
        self.mv = state;
        self.pending.clear();
        Ok(())
    }

    /// Basic has no compensation machinery: a re-issued query evaluated at
    /// a later source state reintroduces exactly the §4 anomalies, so
    /// recovery must resync instead.
    fn reissue_safe(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Schema, Tuple};

    fn view2() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    /// Paper Example 1: low update rate — the basic algorithm is correct.
    #[test]
    fn example_1_correct_when_updates_are_spaced() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 4]));
        let mut alg = Basic::new(v.clone(), v.eval(&db).unwrap());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u1);
        let qs = alg.on_update(&u1).unwrap();
        assert_eq!(qs.len(), 1);
        let a1 = qs[0].query.eval(&db).unwrap();
        alg.on_answer(qs[0].id, a1).unwrap();

        // MV = ([1],[1]) with duplicate retention.
        assert_eq!(alg.materialized().count(&Tuple::ints([1])), 2);
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// Paper Example 2: the insert anomaly — final view has a spurious
    /// duplicate [4].
    #[test]
    fn example_2_insert_anomaly() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Basic::new(v.clone(), SignedBag::new());

        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));

        // Both updates execute at the source before either query arrives.
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);

        let a1 = q1.query.eval(&db).unwrap();
        alg.on_answer(q1.id, a1).unwrap();
        let a2 = q2.query.eval(&db).unwrap();
        alg.on_answer(q2.id, a2).unwrap();

        // Anomaly: MV = ([1],[4],[4]) although V = ([1],[4]).
        assert_eq!(alg.materialized().count(&Tuple::ints([4])), 2);
        assert_ne!(*alg.materialized(), v.eval(&db).unwrap());
    }

    /// Paper Example 3: the deletion anomaly — deletions are missed.
    #[test]
    fn example_3_delete_anomaly() {
        // V = π_{W,Y}(r1 ⋈ r2)
        let v = ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        let mut alg = Basic::new(v.clone(), v.eval(&db).unwrap());
        assert_eq!(alg.materialized().count(&Tuple::ints([1, 3])), 1);

        let u1 = Update::delete("r1", Tuple::ints([1, 2]));
        let u2 = Update::delete("r2", Tuple::ints([2, 3]));
        db.apply(&u1);
        let q1 = alg.on_update(&u1).unwrap().remove(0);
        db.apply(&u2);
        let q2 = alg.on_update(&u2).unwrap().remove(0);

        // Both queries see empty relations → empty answers.
        let a1 = q1.query.eval(&db).unwrap();
        assert!(a1.is_empty());
        alg.on_answer(q1.id, a1).unwrap();
        let a2 = q2.query.eval(&db).unwrap();
        alg.on_answer(q2.id, a2).unwrap();

        // Anomaly: the view still contains [1,3] though it should be empty.
        assert_eq!(alg.materialized().count(&Tuple::ints([1, 3])), 1);
        assert!(v.eval(&db).unwrap().is_empty());
    }

    #[test]
    fn irrelevant_updates_ignored() {
        let v = view2();
        let mut alg = Basic::new(v, SignedBag::new());
        assert!(alg
            .on_update(&Update::insert("other", Tuple::ints([1])))
            .unwrap()
            .is_empty());
        assert!(alg.is_quiescent());
    }

    #[test]
    fn unknown_answer_rejected() {
        let v = view2();
        let mut alg = Basic::new(v, SignedBag::new());
        assert!(matches!(
            alg.on_answer(QueryId(99), SignedBag::new()),
            Err(CoreError::UnknownQuery { id: 99 })
        ));
    }

    /// Basic supports resync but not re-issue: its uncompensated queries
    /// must not be re-evaluated on later source states.
    #[test]
    fn reset_supported_reissue_not() {
        let v = view2();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut alg = Basic::new(v.clone(), SignedBag::new());
        assert!(!alg.reissue_safe());

        let u = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u);
        let q = alg.on_update(&u).unwrap().remove(0);
        assert!(!alg.is_quiescent());
        let recomputed = v.eval(&db).unwrap();
        alg.reset_to(recomputed.clone()).unwrap();
        assert!(alg.is_quiescent());
        assert_eq!(*alg.materialized(), recomputed);
        assert!(alg.on_answer(q.id, SignedBag::new()).is_err());
    }
}
