//! SPJ view definitions (paper §4):
//! `V = π_proj(σ_cond(r1 × r2 × … × rn))`.

use std::fmt;
use std::sync::Arc;

use eca_relational::{Predicate, Schema, SignedBag, Update};

use crate::basedb::BaseLookup;
use crate::error::CoreError;
use crate::expr::{Atom, Query, Term};

/// A select-project-join view over named base relations.
///
/// `cond` and `proj` refer to positions of the concatenated cross-product
/// schema `r1 × r2 × … × rn`. Any SPJ relational-algebra expression can be
/// rewritten into this normal form (paper §4). Construction validates all
/// positional references.
///
/// ```
/// use eca_core::{BaseDb, ViewDef};
/// use eca_relational::{Predicate, Schema, Tuple, Update};
///
/// // V = π_W(r1(W,X) ⋈ r2(X,Y))  — the paper's Example 1 view.
/// let view = ViewDef::new(
///     "V",
///     vec![Schema::new("r1", &["W", "X"]), Schema::new("r2", &["X", "Y"])],
///     Predicate::col_eq(1, 2),
///     vec![0],
/// )?;
///
/// let mut db = BaseDb::for_view(&view);
/// db.insert("r1", Tuple::ints([1, 2]));
/// db.insert("r2", Tuple::ints([2, 4]));
/// assert_eq!(view.eval(&db)?.count(&Tuple::ints([1])), 1);
///
/// // V⟨U⟩: the maintenance query for an update (paper §4.2).
/// let q = view.substitute(&Update::insert("r2", Tuple::ints([2, 3])))?;
/// assert_eq!(q.terms().len(), 1);
/// # Ok::<(), eca_core::CoreError>(())
/// ```
#[derive(Clone)]
pub struct ViewDef {
    inner: Arc<ViewInner>,
}

struct ViewInner {
    name: String,
    base: Vec<Schema>,
    cond: Predicate,
    proj: Vec<usize>,
    /// Cumulative column offsets of each base relation in the product.
    offsets: Vec<usize>,
    total_arity: usize,
}

impl ViewDef {
    /// Define a view.
    ///
    /// The paper's §4 assumes distinct base relations "for simplicity"
    /// and sketches the multiple-occurrence extension; this implementation
    /// supports repeated relations (self-joins) directly — substitution
    /// expands per occurrence by inclusion–exclusion (see
    /// [`crate::Term::substitute_all_occurrences`]). ECA-Key still
    /// requires distinct relations.
    ///
    /// # Errors
    /// Positional errors if `cond` or `proj` reference columns outside
    /// the product arity.
    pub fn new(
        name: impl Into<String>,
        base: Vec<Schema>,
        cond: Predicate,
        proj: Vec<usize>,
    ) -> Result<Self, CoreError> {
        let mut offsets = Vec::with_capacity(base.len());
        let mut total = 0usize;
        for s in &base {
            offsets.push(total);
            total += s.arity();
        }
        if let Some(max) = cond.max_column() {
            if max >= total {
                return Err(eca_relational::RelationalError::PositionOutOfRange {
                    position: max,
                    arity: total,
                }
                .into());
            }
        }
        for &p in &proj {
            if p >= total {
                return Err(eca_relational::RelationalError::PositionOutOfRange {
                    position: p,
                    arity: total,
                }
                .into());
            }
        }
        Ok(ViewDef {
            inner: Arc::new(ViewInner {
                name: name.into(),
                base,
                cond,
                proj,
                offsets,
                total_arity: total,
            }),
        })
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The base relation schemas `r1..rn` in product order.
    pub fn base(&self) -> &[Schema] {
        &self.inner.base
    }

    /// The selection condition over product columns.
    pub fn cond(&self) -> &Predicate {
        &self.inner.cond
    }

    /// The projection positions over product columns.
    pub fn proj(&self) -> &[usize] {
        &self.inner.proj
    }

    /// Arity of the full cross product.
    pub fn product_arity(&self) -> usize {
        self.inner.total_arity
    }

    /// Column offset of base relation `i` in the product.
    pub fn offset(&self, i: usize) -> usize {
        self.inner.offsets[i]
    }

    /// Index of the first occurrence of the named base relation.
    pub fn relation_index(&self, name: &str) -> Option<usize> {
        self.inner.base.iter().position(|s| s.relation() == name)
    }

    /// All occurrence indices of the named base relation (more than one
    /// for self-join views).
    pub fn relation_indices(&self, name: &str) -> Vec<usize> {
        self.inner
            .base
            .iter()
            .enumerate()
            .filter(|(_, s)| s.relation() == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether any base relation name is repeated (a self-join view).
    pub fn has_repeated_relations(&self) -> bool {
        self.inner.base.iter().enumerate().any(|(i, s)| {
            self.inner.base[..i]
                .iter()
                .any(|t| t.relation() == s.relation())
        })
    }

    /// Whether `update` touches a relation of this view.
    pub fn involves(&self, update: &Update) -> bool {
        self.relation_index(&update.relation).is_some()
    }

    /// The view expression as a query (all atoms unbound) — what RV sends
    /// to recompute from scratch.
    pub fn as_query(&self) -> Query {
        Query::from_terms(
            self.clone(),
            vec![Term::new(
                1,
                (0..self.inner.base.len()).map(Atom::Rel).collect(),
            )],
        )
    }

    /// The substitution `V⟨U⟩` (paper §4.2): the view expression with the
    /// updated tuple (signed) substituted for `U`'s relation. For views
    /// where the relation occurs several times, the substitution expands
    /// to the inclusion–exclusion sum over occurrences.
    ///
    /// # Errors
    /// [`CoreError::UnknownRelation`] if the update's relation is not in
    /// the view.
    pub fn substitute(&self, update: &Update) -> Result<Query, CoreError> {
        if self.relation_index(&update.relation).is_none() {
            return Err(CoreError::UnknownRelation {
                relation: update.relation.clone(),
            });
        }
        Ok(self.as_query().substitute(update))
    }

    /// Evaluate the view on base relation contents.
    ///
    /// # Errors
    /// Propagates relational evaluation errors.
    pub fn eval(&self, db: &impl BaseLookup) -> Result<SignedBag, CoreError> {
        Ok(self.as_query().eval(db)?)
    }

    /// Whether every base relation has a declared key whose attributes all
    /// appear in the view output — the precondition of ECA-Key (§5.4).
    pub fn is_fully_keyed(&self) -> bool {
        (0..self.inner.base.len()).all(|i| self.key_view_positions(i).is_some())
    }

    /// For base relation `i`, the positions *in the view output* of its key
    /// attributes, or `None` if the relation has no key or some key
    /// attribute is not projected.
    ///
    /// Used by ECAK's `key-delete`: deleting base tuple `t` from relation
    /// `i` removes every view tuple whose values at these positions equal
    /// `t`'s key values.
    pub fn key_view_positions(&self, i: usize) -> Option<Vec<usize>> {
        let schema = self.inner.base.get(i)?;
        if !schema.has_key() {
            return None;
        }
        let offset = self.inner.offsets[i];
        schema
            .key_positions()
            .iter()
            .map(|&kp| {
                let product_col = offset + kp;
                self.inner.proj.iter().position(|&p| p == product_col)
            })
            .collect()
    }

    /// Key values of the base tuple of `update`, projected onto the base
    /// relation's key positions. Returns `None` when the relation is
    /// unknown or unkeyed.
    pub fn update_key_values(&self, update: &Update) -> Option<Vec<eca_relational::Value>> {
        let idx = self.relation_index(&update.relation)?;
        let schema = &self.inner.base[idx];
        if !schema.has_key() {
            return None;
        }
        schema
            .key_positions()
            .iter()
            .map(|&kp| update.tuple.get(kp).cloned())
            .collect()
    }
}

impl fmt::Debug for ViewDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = pi{:?}(sigma[{}](",
            self.inner.name, self.inner.proj, self.inner.cond
        )?;
        for (i, s) in self.inner.base.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{}", s.relation())?;
        }
        write!(f, "))")
    }
}

impl PartialEq for ViewDef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.name == other.inner.name
                && self.inner.base == other.inner.base
                && self.inner.cond == other.inner.cond
                && self.inner.proj == other.inner.proj)
    }
}

impl Eq for ViewDef {}

/// Builder helpers for the common chain-join shape used throughout the
/// paper: `r1(A,B) ⋈ r2(B,C) ⋈ r3(C,D) …` joined on adjacent attributes.
pub mod builders {
    use super::*;
    use eca_relational::Predicate;

    /// Build a chain equi-join view: each consecutive pair of relations is
    /// joined on `last attribute of left = first attribute of right`, with
    /// an optional extra condition and a projection given as product
    /// column positions.
    ///
    /// # Errors
    /// Propagates [`ViewDef::new`] validation errors.
    pub fn chain_join(
        name: impl Into<String>,
        base: Vec<Schema>,
        extra_cond: Predicate,
        proj: Vec<usize>,
    ) -> Result<ViewDef, CoreError> {
        let mut cond = Predicate::True;
        let mut offset = 0usize;
        for window in base.windows(2) {
            let left_last = offset + window[0].arity() - 1;
            let right_first = offset + window[0].arity();
            cond = cond.and(Predicate::col_eq(left_last, right_first));
            offset += window[0].arity();
        }
        ViewDef::new(name, base, cond.and(extra_cond), proj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basedb::BaseDb;
    use eca_relational::{Predicate, Tuple};

    fn example1_view() -> ViewDef {
        // V = π_W(r1 ⋈ r2), r1(W,X), r2(X,Y)
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        // Self-join views are allowed (the §4 extension).
        let dup = ViewDef::new(
            "V",
            vec![Schema::new("r1", &["A"]), Schema::new("r1", &["B"])],
            Predicate::True,
            vec![0],
        )
        .unwrap();
        assert!(dup.has_repeated_relations());
        assert_eq!(dup.relation_indices("r1"), vec![0, 1]);

        let bad_proj = ViewDef::new(
            "V",
            vec![Schema::new("r1", &["A"])],
            Predicate::True,
            vec![5],
        );
        assert!(bad_proj.is_err());

        let bad_cond = ViewDef::new(
            "V",
            vec![Schema::new("r1", &["A"])],
            Predicate::col_eq(0, 9),
            vec![0],
        );
        assert!(bad_cond.is_err());
    }

    #[test]
    fn offsets_and_indexing() {
        let v = example1_view();
        assert_eq!(v.product_arity(), 4);
        assert_eq!(v.offset(0), 0);
        assert_eq!(v.offset(1), 2);
        assert_eq!(v.relation_index("r2"), Some(1));
        assert_eq!(v.relation_index("nope"), None);
        assert!(v.involves(&Update::insert("r1", Tuple::ints([0, 0]))));
        assert!(!v.involves(&Update::insert("zz", Tuple::ints([0, 0]))));
    }

    #[test]
    fn eval_example_1_initial_state() {
        let v = example1_view();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 4]));
        let mv = v.eval(&db).unwrap();
        assert_eq!(mv, SignedBag::from_tuples([Tuple::ints([1])]));
    }

    #[test]
    fn substitute_binds_the_right_atom() {
        let v = example1_view();
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        let q = v.substitute(&u).unwrap();
        assert_eq!(q.terms().len(), 1);
        let term = &q.terms()[0];
        assert!(matches!(term.atoms()[0], Atom::Rel(0)));
        assert!(matches!(term.atoms()[1], Atom::Bound(_)));

        let unknown = Update::insert("zzz", Tuple::ints([1]));
        assert!(matches!(
            v.substitute(&unknown),
            Err(CoreError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn keyed_view_detection() {
        // V = π_{W,Y}(r1 ⋈ r2) with W key of r1, Y key of r2 (Example 5).
        let v = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap();
        assert!(v.is_fully_keyed());
        assert_eq!(v.key_view_positions(0), Some(vec![0]));
        assert_eq!(v.key_view_positions(1), Some(vec![1]));

        // π_W only: r2's key Y is not projected.
        let v2 = example1_view();
        assert!(!v2.is_fully_keyed());
        assert_eq!(v2.key_view_positions(0), None); // no key declared at all
    }

    #[test]
    fn update_key_values() {
        let v = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap();
        let u = Update::delete("r1", Tuple::ints([1, 2]));
        assert_eq!(
            v.update_key_values(&u),
            Some(vec![eca_relational::Value::Int(1)])
        );
    }

    #[test]
    fn chain_join_builder_matches_manual() {
        let base = vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
            Schema::new("r3", &["Y", "Z"]),
        ];
        let v = builders::chain_join("V", base, Predicate::True, vec![0, 5]).unwrap();
        let mut db = BaseDb::for_view(&v);
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        db.insert("r3", Tuple::ints([3, 9]));
        assert_eq!(
            v.eval(&db).unwrap(),
            SignedBag::from_tuples([Tuple::ints([1, 9])])
        );
    }

    #[test]
    fn debug_is_readable() {
        let v = example1_view();
        let s = format!("{v:?}");
        assert!(s.contains("r1 x r2"));
    }
}
