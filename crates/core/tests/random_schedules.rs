//! Property tests: the algorithm family under *arbitrary* event
//! interleavings, driven by proptest.
//!
//! A mini-scheduler owns the base data and a FIFO of outstanding queries;
//! a proptest-generated decision string chooses, at every step, whether
//! the source executes the next update or answers the oldest query (the
//! only degrees of freedom the paper's event model allows, given in-order
//! delivery). Assertions encode the paper's theorems:
//!
//! * ECA (plain and optimized), Batch-ECA: the final view equals the view
//!   over the final source state, on every schedule.
//! * LCA: additionally, the view's state history equals the source's.
//! * Basic: converges on the all-serial schedule (but not in general).

use eca_core::algorithms::{AlgorithmKind, BatchEca, Lca};
use eca_core::maintainer::{OutboundQuery, ViewMaintainer};
use eca_core::{BaseDb, ViewDef};
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use proptest::prelude::*;
use std::collections::VecDeque;

fn view2() -> ViewDef {
    ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap()
}

/// Strategy: a workload of effective updates over small value domains.
/// Deletions target tuples known to exist at that point.
fn workload() -> impl Strategy<Value = (Vec<(String, Tuple)>, Vec<Update>)> {
    // Initial tuples: (relation choice, a, b) triples.
    let initial = prop::collection::vec((0..2usize, 0i64..4, 0i64..4), 0..8);
    // Update intents: (relation, a, b, try-delete?).
    let intents = prop::collection::vec((0..2usize, 0i64..4, 0i64..4, any::<bool>()), 1..12);
    (initial, intents).prop_map(|(initial, intents)| {
        let rels = ["r1", "r2"];
        let init: Vec<(String, Tuple)> = initial
            .into_iter()
            .map(|(r, a, b)| (rels[r].to_owned(), Tuple::ints([a, b])))
            .collect();
        let mut live: Vec<Vec<Tuple>> = vec![Vec::new(), Vec::new()];
        for (r, t) in &init {
            let idx = if r == "r1" { 0 } else { 1 };
            live[idx].push(t.clone());
        }
        let mut updates = Vec::new();
        for (r, a, b, del) in intents {
            if del && !live[r].is_empty() {
                let t = live[r].remove(0);
                updates.push(Update::delete(rels[r], t));
            } else {
                let t = Tuple::ints([a, b]);
                live[r].push(t.clone());
                updates.push(Update::insert(rels[r], t));
            }
        }
        (init, updates)
    })
}

/// Drive a maintainer through the workload with the given interleaving
/// decisions; returns (final source view, final MV, per-update source
/// view states, warehouse state history).
fn drive(
    alg: &mut dyn ViewMaintainer,
    view: &ViewDef,
    init: &[(String, Tuple)],
    updates: &[Update],
    decisions: &[bool],
) -> (SignedBag, SignedBag, Vec<SignedBag>, Vec<SignedBag>) {
    let mut db = BaseDb::for_view(view);
    for (r, t) in init {
        db.insert(r, t.clone());
    }
    let mut source_states = vec![view.eval(&db).unwrap()];
    let mut warehouse_states = vec![alg.materialized().clone()];
    let mut pending: VecDeque<OutboundQuery> = VecDeque::new();
    let mut next_update = 0usize;
    let mut di = 0usize;

    loop {
        let can_update = next_update < updates.len();
        let can_answer = !pending.is_empty();
        if !can_update && !can_answer {
            break;
        }
        // Decision bit: true = execute update (when possible).
        let take_update = if can_update && can_answer {
            let d = decisions.get(di).copied().unwrap_or(true);
            di += 1;
            d
        } else {
            can_update
        };
        if take_update {
            let u = &updates[next_update];
            next_update += 1;
            if db.apply(u) {
                source_states.push(view.eval(&db).unwrap());
                pending.extend(alg.on_update(u).unwrap());
                record(alg, &mut warehouse_states);
            }
        } else {
            let q = pending.pop_front().unwrap();
            let answer = q.query.eval(&db).unwrap();
            pending.extend(alg.on_answer(q.id, answer).unwrap());
            record(alg, &mut warehouse_states);
        }
    }
    (
        view.eval(&db).unwrap(),
        alg.materialized().clone(),
        source_states,
        warehouse_states,
    )
}

fn record(alg: &mut dyn ViewMaintainer, states: &mut Vec<SignedBag>) {
    let mids = alg.drain_intermediate_states();
    if mids.is_empty() {
        states.push(alg.materialized().clone());
    } else {
        states.extend(mids);
    }
}

fn initial_view(view: &ViewDef, init: &[(String, Tuple)]) -> SignedBag {
    let mut db = BaseDb::for_view(view);
    for (r, t) in init {
        db.insert(r, t.clone());
    }
    view.eval(&db).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn eca_converges_on_any_schedule(
        (init, updates) in workload(),
        decisions in prop::collection::vec(any::<bool>(), 0..40),
    ) {
        let view = view2();
        for kind in [AlgorithmKind::Eca, AlgorithmKind::EcaOptimized] {
            let mut alg = kind.instantiate(&view, initial_view(&view, &init)).unwrap();
            let (src, mv, src_states, wh_states) =
                drive(alg.as_mut(), &view, &init, &updates, &decisions);
            prop_assert_eq!(&mv, &src, "{} diverged", kind.label());
            prop_assert!(alg.is_quiescent());
            let check = eca_consistency::check(&src_states, &wh_states);
            prop_assert!(check.strongly_consistent, "{}: {:?}", kind.label(), check.violation);
        }
    }

    #[test]
    fn lca_is_complete_on_any_schedule(
        (init, updates) in workload(),
        decisions in prop::collection::vec(any::<bool>(), 0..40),
    ) {
        let view = view2();
        let mut alg = Lca::new(view.clone(), initial_view(&view, &init));
        let (src, mv, src_states, wh_states) =
            drive(&mut alg, &view, &init, &updates, &decisions);
        prop_assert_eq!(&mv, &src);
        // LCA's own history must equal the source's state sequence ...
        prop_assert_eq!(alg.state_history(), &src_states[..]);
        // ... and the recorded warehouse history is complete.
        let check = eca_consistency::check(&src_states, &wh_states);
        prop_assert!(check.complete, "{:?}", check.violation);
    }

    #[test]
    fn batch_eca_converges_on_any_schedule(
        (init, updates) in workload(),
        decisions in prop::collection::vec(any::<bool>(), 0..40),
        batch_size in 1usize..4,
    ) {
        let view = view2();
        let mut alg = BatchEca::new(view.clone(), initial_view(&view, &init), batch_size).unwrap();
        let (src, _, _, _) = drive(&mut alg, &view, &init, &updates, &decisions);
        // Flush the possibly-partial trailing batch, then settle by
        // answering on the final state.
        let mut db = BaseDb::for_view(&view);
        for (r, t) in &init {
            db.insert(r, t.clone());
        }
        db.apply_all(&updates);
        let mut queries: VecDeque<OutboundQuery> = alg.flush().unwrap().into();
        while let Some(q) = queries.pop_front() {
            let answer = q.query.eval(&db).unwrap();
            queries.extend(alg.on_answer(q.id, answer).unwrap());
        }
        prop_assert!(alg.is_quiescent());
        prop_assert_eq!(alg.materialized(), &src);
    }

    #[test]
    fn basic_converges_on_the_serial_schedule((init, updates) in workload()) {
        let view = view2();
        let mut alg = AlgorithmKind::Basic.instantiate(&view, initial_view(&view, &init)).unwrap();
        // decisions = all-false would answer-first; the drive() helper
        // only offers the answer choice when a query is pending, and with
        // 0 decision bits defaulting to updates we emulate seriality by
        // answering after each update: force it with alternating choices.
        let mut db = BaseDb::for_view(&view);
        for (r, t) in &init {
            db.insert(r, t.clone());
        }
        for u in &updates {
            if db.apply(u) {
                for q in alg.on_update(u).unwrap() {
                    let answer = q.query.eval(&db).unwrap();
                    alg.on_answer(q.id, answer).unwrap();
                }
            }
        }
        prop_assert_eq!(alg.materialized(), &view.eval(&db).unwrap());
    }

    /// Lemma B.2 as a workload-level property: for any state and any
    /// effective update, Q[before] = Q[after] − Q⟨U⟩[after].
    #[test]
    fn lemma_b2_holds_for_random_states((init, updates) in workload()) {
        let view = view2();
        let mut db = BaseDb::for_view(&view);
        for (r, t) in &init {
            db.insert(r, t.clone());
        }
        let q = view.as_query();
        for u in &updates {
            let before = q.eval(&db).unwrap();
            if !db.apply(u) {
                continue;
            }
            let after = q.eval(&db).unwrap();
            let correction = q.substitute(u).eval(&db).unwrap();
            prop_assert_eq!(&before, &after.minus(&correction), "update {:?}", u);
        }
    }
}
