//! Self-join views — the §4 extension: "Our algorithms can be extended to
//! allow multiple occurrences of the same relation."
//!
//! `V⟨U⟩` expands by inclusion–exclusion over the occurrences (the
//! multilinearity identity keeps Lemma B.2, hence ECA's correctness).

use eca_core::algorithms::{AlgorithmKind, Eca, Lca};
use eca_core::maintainer::ViewMaintainer;
use eca_core::{BaseDb, ViewDef};
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Employee hierarchy: emp(id, mgr); V = "grand-manager" pairs
/// π_{id, grand}(emp ⋈_{mgr = id'} emp') — emp joined with itself.
fn grandmgr_view() -> ViewDef {
    ViewDef::new(
        "grandmgr",
        vec![
            Schema::new("emp", &["id", "mgr"]),
            Schema::new("emp", &["id", "mgr"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0, 3],
    )
    .unwrap()
}

#[test]
fn substitution_expands_by_inclusion_exclusion() {
    let v = grandmgr_view();
    let u = Update::insert("emp", Tuple::ints([5, 7]));
    let q = v.substitute(&u).unwrap();
    // Subsets: {occ0}, {occ1}, {occ0, occ1} → 3 terms; the pair term is
    // negative.
    assert_eq!(q.terms().len(), 3);
    let factors: Vec<i64> = q.terms().iter().map(|t| t.factor()).collect();
    assert_eq!(factors.iter().filter(|&&f| f == 1).count(), 2);
    assert_eq!(factors.iter().filter(|&&f| f == -1).count(), 1);
}

#[test]
fn delta_identity_on_self_join() {
    // V[new] = V[old] + V⟨U⟩[new] must hold for self-joins too.
    let v = grandmgr_view();
    let mut db = BaseDb::new();
    db.register("emp");
    db.insert("emp", Tuple::ints([1, 2]));
    db.insert("emp", Tuple::ints([2, 3]));

    for u in [
        Update::insert("emp", Tuple::ints([3, 1])), // creates a cycle of pairs
        Update::insert("emp", Tuple::ints([0, 0])), // self-managing: joins itself
        Update::delete("emp", Tuple::ints([2, 3])),
        Update::delete("emp", Tuple::ints([0, 0])),
    ] {
        let before = v.eval(&db).unwrap();
        assert!(db.apply(&u), "{u:?}");
        let after = v.eval(&db).unwrap();
        let delta = v.substitute(&u).unwrap().eval(&db).unwrap();
        assert_eq!(
            before.plus(&delta),
            after,
            "delta identity failed for {u:?}"
        );
    }
}

/// Drive ECA over a self-join view with the adversarial interleaving.
#[test]
fn eca_repairs_self_join_anomalies() {
    let v = grandmgr_view();
    let mut db = BaseDb::new();
    db.register("emp");
    db.insert("emp", Tuple::ints([1, 2]));
    let mut alg = Eca::new(v.clone(), v.eval(&db).unwrap());

    let updates = [
        Update::insert("emp", Tuple::ints([2, 3])),
        Update::insert("emp", Tuple::ints([3, 3])), // self-managing
        Update::delete("emp", Tuple::ints([1, 2])),
    ];
    let mut queries = Vec::new();
    for u in &updates {
        db.apply(u);
        queries.extend(alg.on_update(u).unwrap());
    }
    for q in &queries {
        alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
    }
    assert!(alg.is_quiescent());
    assert_eq!(*alg.materialized(), v.eval(&db).unwrap());
}

/// LCA remains complete on self-join views.
#[test]
fn lca_complete_on_self_join() {
    let v = grandmgr_view();
    let mut db = BaseDb::new();
    db.register("emp");
    db.insert("emp", Tuple::ints([1, 1]));
    let mut alg = Lca::new(v.clone(), v.eval(&db).unwrap());

    let updates = [
        Update::insert("emp", Tuple::ints([2, 1])),
        Update::delete("emp", Tuple::ints([1, 1])),
        Update::insert("emp", Tuple::ints([1, 2])),
    ];
    let mut source_states = vec![v.eval(&db).unwrap()];
    let mut queries = Vec::new();
    for u in &updates {
        db.apply(u);
        source_states.push(v.eval(&db).unwrap());
        queries.extend(alg.on_update(u).unwrap());
    }
    for q in &queries {
        alg.on_answer(q.id, q.query.eval(&db).unwrap()).unwrap();
    }
    assert!(alg.is_quiescent());
    assert_eq!(alg.state_history(), &source_states[..]);
}

/// ECA-Key refuses self-join views (the streamlining is proven only for
/// distinct relations).
#[test]
fn eca_key_rejects_self_joins() {
    let v = ViewDef::new(
        "V",
        vec![
            Schema::with_key("emp", &["id", "mgr"], &["id"]).unwrap(),
            Schema::with_key("emp", &["id", "mgr"], &["id"]).unwrap(),
        ],
        Predicate::col_eq(1, 2),
        vec![0, 2],
    )
    .unwrap();
    assert!(AlgorithmKind::EcaKey
        .instantiate(&v, SignedBag::new())
        .is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ECA on a self-join view converges on arbitrary schedules.
    #[test]
    fn eca_self_join_any_schedule(
        tuples in prop::collection::vec((0i64..4, 0i64..4), 0..6),
        intents in prop::collection::vec((0i64..4, 0i64..4, any::<bool>()), 1..8),
        decisions in prop::collection::vec(any::<bool>(), 0..30),
    ) {
        let v = grandmgr_view();
        let mut db = BaseDb::new();
        db.register("emp");
        let mut live = Vec::new();
        for (a, b) in &tuples {
            let t = Tuple::ints([*a, *b]);
            db.insert("emp", t.clone());
            live.push(t);
        }
        let mut alg = Eca::new(v.clone(), v.eval(&db).unwrap());

        // Build effective updates.
        let mut updates = Vec::new();
        for (a, b, del) in intents {
            if del && !live.is_empty() {
                updates.push(Update::delete("emp", live.remove(0)));
            } else {
                let t = Tuple::ints([a, b]);
                live.push(t.clone());
                updates.push(Update::insert("emp", t));
            }
        }

        let mut pending: VecDeque<eca_core::OutboundQuery> = VecDeque::new();
        let mut next = 0usize;
        let mut di = 0usize;
        loop {
            let can_u = next < updates.len();
            let can_a = !pending.is_empty();
            if !can_u && !can_a {
                break;
            }
            let take_u = if can_u && can_a {
                let d = decisions.get(di).copied().unwrap_or(true);
                di += 1;
                d
            } else {
                can_u
            };
            if take_u {
                let u = &updates[next];
                next += 1;
                if db.apply(u) {
                    pending.extend(alg.on_update(u).unwrap());
                }
            } else {
                let q = pending.pop_front().unwrap();
                let a = q.query.eval(&db).unwrap();
                pending.extend(alg.on_answer(q.id, a).unwrap());
            }
        }
        prop_assert!(alg.is_quiescent());
        prop_assert_eq!(alg.materialized(), &v.eval(&db).unwrap());
    }
}
