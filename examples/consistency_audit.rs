//! Audit every algorithm against the paper's §3.1 correctness hierarchy.
//!
//! ```text
//! cargo run --release --example consistency_audit
//! ```
//!
//! Runs each maintenance algorithm over randomized update streams and
//! randomized event interleavings, records the source/warehouse state
//! histories, and classifies each run with the consistency checker. The
//! output reproduces the paper's claims:
//!
//! * Basic (Alg. 5.1) — not even weakly consistent on adversarial runs,
//! * ECA / ECA-Key / RV — strongly consistent on every run,
//! * LCA / SC — complete on every run.

use eca_consistency::Level;
use eca_core::algorithms::AlgorithmKind;
use eca_sim::{Policy, Simulation};
use eca_storage::Scenario;
use eca_workload::{Example6, Params, UpdateMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params {
        cardinality: 40,
        ..Params::default()
    };
    let algorithms = [
        AlgorithmKind::Basic,
        AlgorithmKind::Eca,
        AlgorithmKind::EcaOptimized,
        AlgorithmKind::Lca,
        AlgorithmKind::RecomputeView { period: 4 },
        AlgorithmKind::StoreCopies,
    ];

    println!(
        "{:<10} {:>8} {:>22} {:>10}",
        "algorithm", "runs", "worst level observed", "correct"
    );
    for kind in algorithms {
        let mut worst = Level::Complete;
        let mut correct = 0usize;
        let mut runs = 0usize;
        for seed in 0..12u64 {
            let workload = Example6::new(params, seed);
            let updates = workload.updates(16, UpdateMix::Mixed);
            let source = workload.build_source(Scenario::Indexed)?;
            let view = Example6::view()?;
            let snapshot = source.snapshot();
            let initial = view.eval(&snapshot)?;
            let warehouse = kind.instantiate_with_base(&view, initial, Some(snapshot))?;
            let policy = match seed % 3 {
                0 => Policy::Serial,
                1 => Policy::AllUpdatesFirst,
                _ => Policy::Random { seed },
            };
            let report = Simulation::new(source, warehouse, updates)?.run(policy)?;
            let check =
                eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
            worst = worst.min(check.level());
            if report.converged() {
                correct += 1;
            }
            runs += 1;
        }
        println!(
            "{:<10} {:>8} {:>22} {:>7}/{}",
            kind.label(),
            runs,
            format!("{worst:?}"),
            correct,
            runs
        );
    }

    println!();
    println!("Basic fails exactly as Examples 2-3 predict; every compensating");
    println!("algorithm is at least strongly consistent; LCA and SC are complete.");
    Ok(())
}
