//! A warehouse hosting several views with different maintenance
//! strategies, plus batched update processing (paper §7's extensions).
//!
//! ```text
//! cargo run --example multi_view_warehouse
//! ```
//!
//! Three views over three shared base relations:
//!
//! * `sales_by_region` — ECA with the Appendix-D.2 refinement,
//! * `supplier_parts` — ECA-Key (the view carries both keys),
//! * `big_orders` — a single-relation view, maintained with zero source
//!   queries by ECA's local evaluation.
//!
//! Updates stream through an [`eca_warehouse::Warehouse`] runtime;
//! answers are produced from the shared source state and routed back by
//! session-global query id.

use eca_core::algorithms::AlgorithmKind;
use eca_core::{BaseDb, ViewDef};
use eca_relational::{CmpOp, Predicate, Schema, Tuple, Update};
use eca_warehouse::Warehouse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base relations at the source:
    //   orders(order_id, region_id, amount)
    //   regions(region_id, manager_id)
    //   parts(part_id, supplier_id)
    let orders = Schema::with_key(
        "orders",
        &["order_id", "region_id", "amount"],
        &["order_id"],
    )?;
    let regions = Schema::with_key("regions", &["region_id", "manager_id"], &["region_id"])?;
    let parts = Schema::with_key("parts", &["part_id", "supplier_id"], &["part_id"])?;

    // V1 = π_{order_id, manager_id}(orders ⋈ regions)
    let sales_by_region = ViewDef::new(
        "sales_by_region",
        vec![orders.clone(), regions.clone()],
        Predicate::col_eq(1, 3),
        vec![0, 4],
    )?;
    // V2 = π_{part_id, region_id}(parts ⋈_{supplier_id = region_id}
    // regions) — fully keyed (part_id and region_id both projected).
    let supplier_parts = ViewDef::new(
        "supplier_parts",
        vec![parts.clone(), regions.clone()],
        Predicate::col_eq(1, 2),
        vec![0, 2],
    )?;
    // V3 = π_{order_id}(σ_{amount > 500}(orders)) — single relation.
    let big_orders = ViewDef::new(
        "big_orders",
        vec![orders.clone()],
        Predicate::col_const(2, CmpOp::Gt, 500),
        vec![0],
    )?;

    // Shared source state (a logical mirror drives this demo).
    let mut db = BaseDb::new();
    for s in [&orders, &regions, &parts] {
        db.register(s.relation());
    }
    db.insert("regions", Tuple::ints([1, 900]));
    db.insert("regions", Tuple::ints([2, 901]));
    db.insert("orders", Tuple::ints([10, 1, 250]));
    db.insert("parts", Tuple::ints([77, 2]));

    let mut hub = Warehouse::new();
    let src = hub.add_source("mirror");
    let i1 = hub.add_view(
        src,
        AlgorithmKind::EcaOptimized.instantiate(&sales_by_region, sales_by_region.eval(&db)?)?,
    )?;
    let i2 = hub.add_view(
        src,
        AlgorithmKind::EcaKey.instantiate(&supplier_parts, supplier_parts.eval(&db)?)?,
    )?;
    let i3 = hub.add_view(
        src,
        AlgorithmKind::EcaOptimized.instantiate(&big_orders, big_orders.eval(&db)?)?,
    )?;

    let updates = vec![
        Update::insert("orders", Tuple::ints([11, 1, 750])),
        Update::insert("orders", Tuple::ints([12, 2, 90])),
        Update::insert("regions", Tuple::ints([3, 902])),
        Update::insert("parts", Tuple::ints([78, 1])),
        Update::delete("orders", Tuple::ints([10, 1, 250])),
        Update::insert("orders", Tuple::ints([13, 3, 1200])),
    ];

    // Adversarial timing: all updates hit the source before any query is
    // answered, then every query is evaluated on the final state.
    let mut queries = Vec::new();
    for u in &updates {
        db.apply(u);
        let emitted = hub.on_update(src, u)?;
        println!("{u:?} -> {} query message(s)", emitted.len());
        queries.extend(emitted);
    }
    for q in &queries {
        hub.on_answer(src, q.id, q.query.eval(&db)?)?;
    }
    assert!(hub.is_quiescent());

    println!();
    for (idx, view) in [
        (i1, &sales_by_region),
        (i2, &supplier_parts),
        (i3, &big_orders),
    ] {
        let mv = hub.materialized(idx);
        let truth = view.eval(&db)?;
        println!(
            "{:<16} [{}] -> {:?}  {}",
            view.name(),
            hub.maintainer(idx).algorithm(),
            mv,
            if *mv == truth { "(correct)" } else { "(WRONG)" }
        );
        assert_eq!(mv, &truth, "{}", view.name());
    }

    println!(
        "\nAll {} views converged through one shared update stream.",
        hub.view_count()
    );
    Ok(())
}
