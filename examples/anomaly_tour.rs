//! A guided tour of the paper's anomalies (Examples 1–9).
//!
//! ```text
//! cargo run --example anomaly_tour
//! ```
//!
//! Replays every worked example from the paper through the full simulator
//! under the adversarial interleaving, once with the naive incremental
//! algorithm of [BLT86] (Algorithm 5.1) and once with ECA (or ECA-Key for
//! the keyed scenario). The naive runs reproduce the paper's anomalies;
//! the compensating runs repair them.

use eca_core::algorithms::AlgorithmKind;
use eca_sim::{Policy, RunReport, Simulation};
use eca_source::Source;
use eca_storage::Scenario;
use eca_workload::scenarios::{self, Scenario as Canned};

fn run(scenario: &Canned, kind: AlgorithmKind) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut source = Source::new(Scenario::Indexed);
    for schema in scenario.view.base() {
        source.add_relation(schema.clone(), 20, None, &[])?;
    }
    for (rel, tuples) in &scenario.initial {
        source.load(rel, tuples.iter().cloned())?;
    }
    let snapshot = source.snapshot();
    let initial = scenario.view.eval(&snapshot)?;
    let warehouse = kind.instantiate_with_base(&scenario.view, initial, Some(snapshot))?;
    Ok(
        Simulation::new(source, warehouse, scenario.updates.clone())?
            .run(Policy::AllUpdatesFirst)?,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for scenario in scenarios::all() {
        println!("=== {} — {}", scenario.name, scenario.description);
        println!("view: {:?}", scenario.view);
        for u in &scenario.updates {
            println!("  update: {u:?}");
        }

        let naive = run(&scenario, AlgorithmKind::Basic)?;
        let fixed_kind = if scenario.keyed {
            AlgorithmKind::EcaKey
        } else {
            AlgorithmKind::Eca
        };
        let fixed = run(&scenario, fixed_kind)?;

        println!(
            "correct final view          : {:?}",
            scenario.expected_final
        );
        println!(
            "Basic (Alg. 5.1) final view : {:?}  {}",
            naive.final_mv,
            if naive.converged() {
                "(correct)"
            } else {
                "(ANOMALY!)"
            }
        );
        println!(
            "{:<5} final view            : {:?}  {}",
            fixed_kind.label(),
            fixed.final_mv,
            if fixed.converged() {
                "(correct)"
            } else {
                "(ANOMALY!)"
            }
        );
        assert!(
            fixed.converged(),
            "{}: the compensating algorithm must converge",
            scenario.name
        );
        assert_eq!(fixed.final_mv, scenario.expected_final, "{}", scenario.name);
        println!();
    }

    println!("The compensating algorithms repaired every interleaving.");
    Ok(())
}
