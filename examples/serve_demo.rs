//! Online read serving over TCP: maintenance and readers at once.
//!
//! ```text
//! cargo run --example serve_demo -- [--readers N] [--updates N] [--workers N]
//! ```
//!
//! One warehouse maintains a join view from a live update stream while
//! a real TCP read-serving front end ([`eca_serve::serve_listener`])
//! answers concurrent readers on loopback sockets. Every committed
//! maintenance event publishes an epoch snapshot; readers never touch
//! the maintainer's working state — they read published `Arc`
//! snapshots, at the §3 consistency level each client picked:
//!
//! * `convergent` — any published epoch (cheapest, samples the ring),
//! * `weak` — monotonic per client (the client carries its floor),
//! * `strong` — the latest quiescent epoch (a §3.1 history state).
//!
//! After the run the demo reads the view once more at `strong` and
//! checks it equals the view definition evaluated on the final base
//! state — convergence, observed through the serving path itself.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_serve::{serve_listener, ReadClient};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::{SourceId, Warehouse};
use eca_wire::{Message, ReadLevel, Role, SharedFifo, TcpTransport, TransferMeter, Transport};

fn parse_args() -> (usize, usize, usize) {
    let (mut readers, mut updates, mut workers) = (6usize, 400usize, 2usize);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a positive integer");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--readers" => readers = take("--readers"),
            "--updates" => updates = take("--updates"),
            "--workers" => workers = take("--workers"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    (readers, updates, workers)
}

fn main() {
    let (readers, updates, workers) = parse_args();

    // The maintained deployment: one source, one join view.
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source
        .load("r1", (0..10).map(|j| Tuple::ints([j, j % 4])))
        .unwrap();
    source
        .load("r2", (0..10).map(|j| Tuple::ints([j % 4, 100 + j])))
        .unwrap();
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap();

    let mut wh = Warehouse::new();
    let src = wh.add_source("s0");
    let initial = view.eval(&source.snapshot()).unwrap();
    let maintainer = AlgorithmKind::Eca.instantiate(&view, initial).unwrap();
    wh.add_view(src, maintainer).unwrap();

    // Publish epochs and open the TCP front end.
    let registry = wh.enable_serving(8);
    let handle = serve_listener("127.0.0.1:0", Arc::clone(&registry), workers).unwrap();
    let addr = handle.addr();
    println!("serving on {addr} with {workers} workers");

    // Readers: each its own socket, level dealt round-robin.
    let stop = Arc::new(AtomicBool::new(false));
    let reader_threads: Vec<_> = (0..readers)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let level = [ReadLevel::Convergent, ReadLevel::Weak, ReadLevel::Strong][i % 3];
                let conn = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
                let mut client = ReadClient::new(conn);
                let mut reads = 0u64;
                let mut staleness_sum = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let out = client.read(0, level).unwrap();
                    reads += 1;
                    staleness_sum += out.staleness();
                }
                (level, reads, staleness_sum)
            })
        })
        .collect();

    // Maintenance: stream updates through the warehouse while the
    // readers hammer the serving port.
    let (mut src_end, mut wh_end) = SharedFifo::pair(TransferMeter::new());
    for i in 0..updates as i64 {
        let u = if i % 2 == 0 {
            Update::insert("r1", Tuple::ints([1000 + i, i % 4]))
        } else {
            Update::insert("r2", Tuple::ints([i % 4, 200 + i]))
        };
        assert!(source.execute_update(&u));
        src_end
            .send(&Message::UpdateNotification { update: u })
            .unwrap();
        loop {
            let mut progress = wh.pump(SourceId(0), &mut wh_end).unwrap() > 0;
            while let Some(msg) = src_end.try_recv().unwrap() {
                let Message::QueryRequest { id, query } = msg else {
                    panic!("unexpected message at source");
                };
                let answer = source.answer(&query).unwrap();
                src_end.send(&Message::QueryAnswer { id, answer }).unwrap();
                progress = true;
            }
            if !progress && wh.is_quiescent() {
                break;
            }
        }
    }

    stop.store(true, Ordering::Release);
    for t in reader_threads {
        let (level, reads, staleness_sum) = t.join().unwrap();
        println!(
            "reader[{}]: {reads} reads, mean staleness {:.2} epochs",
            level.label(),
            staleness_sum as f64 / reads.max(1) as f64
        );
    }

    // Convergence, observed through the serving path: a fresh strong
    // read equals the definition on the final base state.
    let conn = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
    let mut checker = ReadClient::new(conn);
    let out = checker.read(0, ReadLevel::Strong).unwrap();
    let expected = view.eval(&source.snapshot()).unwrap();
    assert_eq!(out.rows, expected, "strong read diverged from definition");
    println!(
        "strong read at epoch {} (latest {}) matches the definition: {} rows; {} requests served",
        out.epoch,
        out.latest,
        out.rows.pos_len(),
        handle.served()
    );
    handle.shutdown();
}
