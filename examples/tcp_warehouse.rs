//! Many TCP sources, one reactor warehouse (paper Figure 1.1, scaled
//! out).
//!
//! ```text
//! cargo run --example tcp_warehouse -- [--sources N] [--workers N]
//! ```
//!
//! Every source site runs on its own thread and dials the warehouse's
//! loopback listener with [`eca_warehouse::connect_source`] — a real
//! framed TCP connection opened with a `Hello` handshake naming its
//! [`eca_warehouse::SourceId`]. The warehouse side is
//! [`eca_warehouse::ReactorWarehouse::run_listener`]: connections are
//! admitted *live* while the fixed worker pool runs, each socket's
//! readiness multiplexed by one [`eca_wire::Poller`] thread into
//! [`eca_wire::PollWaker`] notifications. However many sources you ask
//! for, the warehouse side stays at `workers + 1 accept loop + 1 poller`
//! OS threads.
//!
//! Each source hosts one two-relation join view; after every script
//! drains, every materialized view is checked against its definition
//! evaluated directly on that source's final base state.

use std::net::TcpListener;

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::{connect_source, SourceId, Warehouse};
use eca_wire::{Message, Poller, TransferMeter, Transport};

fn parse_args() -> (usize, usize) {
    let (mut sources, mut workers) = (8usize, 2usize);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a positive integer");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--sources" => sources = take("--sources"),
            "--workers" => workers = take("--workers"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    (sources, workers)
}

/// One site: two preloaded relations and the join view over them.
fn build_site(s: usize) -> (Source, ViewDef, Vec<Update>) {
    let (r1, r2) = (format!("r{s}_1"), format!("r{s}_2"));
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new(&r1, &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new(&r2, &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source.load(&r1, [Tuple::ints([1, 2])]).unwrap();
    let view = ViewDef::new(
        format!("V{s}"),
        vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap();
    let script = vec![
        Update::insert(&r2, Tuple::ints([2, 3])),
        Update::insert(&r1, Tuple::ints([4, 2])),
        Update::delete(&r1, Tuple::ints([1, 2])),
    ];
    (source, view, script)
}

fn os_threads() -> Option<usize> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find_map(|l| {
            l.strip_prefix("Threads:")
                .and_then(|v| v.trim().parse().ok())
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n_sources, workers) = parse_args();

    // Warehouse side: register every source and its view, then reshape
    // into the reactor runtime.
    let mut warehouse = Warehouse::new();
    let mut sites = Vec::new();
    let mut view_ids = Vec::new();
    for s in 0..n_sources {
        let (source, view, script) = build_site(s);
        let src = warehouse.add_source(format!("site{s}"));
        let initial = view.eval(&source.snapshot())?;
        view_ids.push(warehouse.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial)?)?);
        sites.push((source, view, script));
    }
    let expected: Vec<u64> = sites
        .iter()
        .map(|(_, _, script)| script.len() as u64)
        .collect();
    let reactor = warehouse.into_reactor(workers);

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let poller = Poller::new()?;
    let meters: Vec<TransferMeter> = (0..n_sources).map(|_| TransferMeter::new()).collect();

    let (processed, finals) = std::thread::scope(|scope| {
        // Source sites: each its own thread, dialing in live — some
        // connect before the reactor even starts accepting (the backlog
        // holds them), the staggered rest land on a running pool.
        for (s, (source, _, script)) in sites.iter_mut().enumerate() {
            let meter = meters[s].clone();
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis((s as u64 % 8) * 3));
                let mut link = connect_source(addr, SourceId(s), meter).unwrap();
                for u in script.iter() {
                    assert!(source.execute_update(u));
                    link.send(&Message::UpdateNotification { update: u.clone() })
                        .unwrap();
                }
                // Answer compensating queries until the warehouse,
                // fully settled, hangs up.
                while let Some(msg) = link.recv().unwrap() {
                    let Message::QueryRequest { id, query } = msg else {
                        panic!("unexpected message at site {s}");
                    };
                    let answer = source.answer(&query).unwrap();
                    link.meter().record_answer_payload(
                        answer.encoded_len() as u64,
                        answer.pos_len() + answer.neg_len(),
                    );
                    link.send(&Message::QueryAnswer { id, answer }).unwrap();
                }
            });
        }
        // Sample the thread count mid-run: the delta over the pre-pool
        // baseline is the warehouse's whole footprint (workers + accept
        // loop — the poller is already in the baseline), however many
        // sites dial in.
        let sampler = scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            os_threads()
        });
        let before = os_threads();
        let processed = reactor.run_listener(listener, &poller, &expected).unwrap();
        if let (Some(before), Some(during)) = (before, sampler.join().unwrap()) {
            if during > before {
                println!(
                    "OS threads mid-run: {during} — the warehouse runtime added {} \
                     ({workers} workers + 1 accept loop; 1 poller already running), \
                     independent of --sources; the {n_sources} source sites are \
                     this demo's own dialing threads",
                    during - before
                );
            }
        }
        let finals: Vec<_> = view_ids
            .iter()
            .map(|id| reactor.materialized(*id))
            .collect();
        (processed, finals)
    });

    // Every view must equal its definition evaluated on the final base
    // state of its (autonomous, remote) source.
    for (s, (source, view, _)) in sites.iter().enumerate() {
        assert_eq!(
            finals[s],
            view.eval(&source.snapshot())?,
            "view V{s} diverged"
        );
    }
    let messages: u64 = meters
        .iter()
        .map(|m| m.messages_s2w() + m.messages_w2s())
        .sum();
    let answer_bytes: u64 = meters.iter().map(|m| m.answer_bytes()).sum();
    println!(
        "{n_sources} TCP sources × {workers} reactor workers: {processed} events processed, \
         {messages} messages on the wire, {answer_bytes} answer bytes (paper B)"
    );
    println!("every view converged to its definition on the final base state");
    Ok(())
}
