//! Example 6 end-to-end over a real TCP connection (paper Figure 1.1).
//!
//! ```text
//! cargo run --example tcp_warehouse
//! ```
//!
//! The source site runs on its own thread behind a loopback
//! `TcpListener`, driving [`eca_source::Source::serve`]; the warehouse
//! connects with an [`eca_wire::TcpTransport`] and maintains the
//! Example 6 view with ECA, demultiplexing answers by query id through
//! an [`eca_warehouse::Warehouse`]. The same workload also runs through
//! the in-memory simulator, and the two final views — plus the metered
//! message and byte counts, since framing overhead is never charged —
//! must agree exactly.

use std::net::TcpListener;
use std::thread;

use eca_core::algorithms::AlgorithmKind;
use eca_sim::{Policy, Simulation};
use eca_storage::Scenario;
use eca_warehouse::Warehouse;
use eca_wire::{Message, Role, TcpTransport, TransferMeter, Transport};
use eca_workload::{Example6, Params, UpdateMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 42;
    let workload = Example6::new(Params::default(), seed);
    let view = Example6::view()?;
    let script = workload.updates(12, UpdateMix::Mixed);

    // Reference run: the same workload through the in-memory scheduler.
    // `serve` executes its whole script before answering anything, which
    // is exactly the AllUpdatesFirst interleaving.
    let reference = {
        let source = workload.build_source(Scenario::Indexed)?;
        let snapshot = source.snapshot();
        let initial = view.eval(&snapshot)?;
        let maintainer =
            AlgorithmKind::Eca.instantiate_with_base(&view, initial, Some(snapshot))?;
        Simulation::new(source, maintainer, script.clone())?.run(Policy::AllUpdatesFirst)?
    };

    // Source site: its own thread, its own TCP endpoint, its own meter.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let source_thread = thread::spawn(
        move || -> Result<_, Box<dyn std::error::Error + Send + Sync>> {
            let workload = Example6::new(Params::default(), seed);
            let mut source = workload.build_source(Scenario::Indexed)?;
            let script = workload.updates(12, UpdateMix::Mixed);
            let (stream, _) = listener.accept()?;
            let mut transport = TcpTransport::new(stream, Role::Source, TransferMeter::new())?;
            let stats = source.serve(&mut transport, &script)?;
            Ok(stats)
        },
    );

    // Warehouse site: connect, host the view, pump until every
    // notification has arrived and all compensation has settled.
    let meter = TransferMeter::new();
    let mut transport = TcpTransport::connect(addr, Role::Warehouse, meter.clone())?;
    let mut warehouse = Warehouse::new();
    let src = warehouse.add_source("example6-source");
    let view_id = {
        let source = workload.build_source(Scenario::Indexed)?;
        let snapshot = source.snapshot();
        let initial = view.eval(&snapshot)?;
        warehouse.add_view(
            src,
            AlgorithmKind::Eca.instantiate_with_base(&view, initial, Some(snapshot))?,
        )?
    };

    let mut notifications = 0u64;
    while notifications < reference.notification_messages || !warehouse.is_quiescent() {
        let Some(msg) = transport.recv()? else {
            return Err("source hung up before the warehouse settled".into());
        };
        if matches!(msg, Message::UpdateNotification { .. }) {
            notifications += 1;
        }
        if let Message::QueryAnswer { answer, .. } = &msg {
            transport.meter().record_answer_payload(
                answer.encoded_len() as u64,
                answer.pos_len() + answer.neg_len(),
            );
        }
        for reply in warehouse.on_message(src, msg)? {
            transport.send(&reply)?;
        }
    }
    // Hanging up is what ends the source's serve loop.
    drop(transport);
    let stats = source_thread
        .join()
        .map_err(|_| "source thread panicked")?
        .map_err(|e| e.to_string())?;

    let final_mv = warehouse.materialized(view_id);
    println!("source served: {stats:?}");
    println!(
        "warehouse: {} notifications, {} query round-trips, {} answer bytes",
        notifications,
        meter.messages_w2s(),
        meter.answer_bytes()
    );
    println!("final view over TCP:   {} tuple(s)", final_mv.pos_len());
    println!(
        "final view in memory:  {} tuple(s)",
        reference.final_mv.pos_len()
    );

    assert_eq!(
        final_mv, &reference.final_mv,
        "TCP and in-memory runs diverged"
    );
    assert!(warehouse.is_quiescent());
    // Framing (the 4-byte length prefix) is never metered, so the wire
    // run reports the paper's B and M identically to the simulator.
    assert_eq!(meter.messages_w2s(), reference.query_messages);
    assert_eq!(
        meter.messages_s2w() - stats.notifications,
        reference.answer_messages
    );
    assert_eq!(meter.answer_bytes(), reference.answer_bytes);
    assert_eq!(meter.bytes_w2s(), reference.bytes_w2s);
    assert_eq!(meter.bytes_s2w(), reference.bytes_s2w);

    println!("\nTCP warehouse reached the same view with identical meters.");
    Ok(())
}
