//! Explore the RV-vs-ECA cost tradeoff interactively.
//!
//! ```text
//! cargo run --release --example cost_explorer [-- <k> [C]]
//! ```
//!
//! For a chosen update-batch size `k` (default 20) and cardinality `C`
//! (default 100), prints the three §6 cost factors for recomputation and
//! for eager compensation — measured on the full stack next to the
//! Appendix-D closed forms — and says who wins on each metric.

use eca_bench::{measure, Corner};
use eca_storage::Scenario;
use eca_workload::Params;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    let c: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let params = Params {
        cardinality: c,
        ..Params::default()
    };

    println!(
        "k = {k} updates, C = {c} tuples/relation, J = {}\n",
        params.join_factor
    );
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "corner", "messages", "B paper(meas)", "B analytic", "IO S1 meas", "IO S2 meas"
    );

    for corner in Corner::all() {
        let s1 = measure(params, 1, k, corner, Scenario::Indexed);
        let s2 = measure(params, 1, k, corner, Scenario::nested_loop_default());
        let analytic_b = match corner {
            Corner::RvBest => eca_analytic::bytes::b_rv_best(&params),
            Corner::RvWorst => eca_analytic::bytes::b_rv_worst(&params, k),
            Corner::EcaBest => eca_analytic::bytes::b_eca_best(&params, k),
            Corner::EcaWorst => eca_analytic::bytes::b_eca_worst(&params, k),
        };
        println!(
            "{:<10} {:>10} {:>14.0} {:>14.0} {:>12} {:>12}",
            corner.label(),
            s1.maintenance_messages,
            s1.paper_bytes,
            analytic_b,
            s1.io_reads,
            s2.io_reads
        );
        assert!(s1.converged && s2.converged, "all corners must converge");
    }

    let eca = measure(params, 1, k, Corner::EcaBest, Scenario::Indexed);
    let rv = measure(params, 1, k, Corner::RvBest, Scenario::Indexed);
    println!();
    if eca.paper_bytes < rv.paper_bytes {
        println!(
            "At k = {k}, incremental maintenance (ECA) still wins on data transfer \
             ({:.0} vs {:.0} bytes). The paper's crossover for C = {c} sits near k = C.",
            eca.paper_bytes, rv.paper_bytes
        );
    } else {
        println!(
            "At k = {k}, batch recomputation (RV) wins on data transfer \
             ({:.0} vs {:.0} bytes) — past the paper's crossover.",
            rv.paper_bytes, eca.paper_bytes
        );
    }
}
