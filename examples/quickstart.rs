//! Quickstart: maintain a warehouse view over a remote source with ECA.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's two-relation view `V = π_W(r1 ⋈ r2)`, wires a
//! metered source to an ECA warehouse, pushes a few updates through the
//! adversarial interleaving (every update executes before any query is
//! answered), and shows that the final materialized view is correct.

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_sim::{Policy, Simulation};
use eca_source::Source;
use eca_storage::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define the view the warehouse materializes:
    //    V = π_W(r1(W,X) ⋈ r2(X,Y)).
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2), // r1.X = r2.X
        vec![0],                 // project W
    )?;

    // 2. Stand up the autonomous source: a block-based storage engine that
    //    knows nothing about views.
    let mut source = Source::new(Scenario::Indexed);
    source.add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])?;
    source.add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])?;
    source.load("r1", [Tuple::ints([1, 2])])?;

    // 3. Instantiate the Eager Compensating Algorithm with MV = V[ss0].
    let initial = view.eval(&source.snapshot())?;
    let warehouse = AlgorithmKind::EcaOptimized.instantiate(&view, initial)?;

    // 4. Script the paper's Example-2 updates — the interleaving that
    //    breaks naive incremental maintenance.
    let updates = vec![
        Update::insert("r2", Tuple::ints([2, 3])),
        Update::insert("r1", Tuple::ints([4, 2])),
    ];

    // 5. Run with all updates racing ahead of the queries.
    let report = Simulation::new(source, warehouse, updates)?.run(Policy::AllUpdatesFirst)?;

    println!("event trace:");
    for event in &report.trace {
        println!("  {event}");
    }
    println!();
    println!("final view at warehouse : {:?}", report.final_mv);
    println!("view over source state  : {:?}", report.final_source_view);
    println!("converged               : {}", report.converged());
    println!(
        "costs: {} maintenance messages, {} answer bytes, {} source block reads",
        report.maintenance_messages(),
        report.answer_bytes,
        report.io_reads
    );

    assert!(report.converged(), "ECA must converge");
    Ok(())
}
