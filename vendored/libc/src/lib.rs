//! Offline stand-in for the `libc` crate.
//!
//! Provides exactly the `poll(2)` surface this workspace uses: the
//! [`pollfd`] structure, the readiness flags, and the raw syscall
//! binding. The process already links the platform C library through
//! `std`, so a plain `extern "C"` declaration resolves without any
//! build-script or feature machinery.
//!
//! On top of the raw binding sits [`poll_fds`], a safe wrapper with the
//! usual Rust error conventions. `eca-wire` is `#![forbid(unsafe_code)]`,
//! so all `unsafe` stays quarantined in this shim — mirroring how the
//! other `vendored/` crates keep non-idiomatic surface out of the
//! workspace proper.

use std::io;
use std::os::fd::RawFd;

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Writing is now possible without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (output only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only).
pub const POLLHUP: i16 = 0x010;
/// Invalid request: fd not open (output only).
pub const POLLNVAL: i16 = 0x020;

/// Number of file descriptors, as `poll(2)` counts them. C `unsigned
/// long`, so pointer-width sized: declaring it `u64` unconditionally
/// would split the count across two argument slots on 32-bit targets
/// and shift `timeout` into the wrong one — undefined behavior at the
/// FFI boundary.
#[allow(non_camel_case_types)]
pub type nfds_t = core::ffi::c_ulong;

/// One entry in a `poll(2)` set: the fd, the events the caller is
/// interested in, and the events the kernel reports back.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
#[allow(non_camel_case_types)]
pub struct pollfd {
    /// File descriptor to watch. Negative entries are ignored by the
    /// kernel and report `revents == 0` — handy for tombstoned slots.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events; includes `POLLERR` / `POLLHUP` / `POLLNVAL`
    /// even when not requested.
    pub revents: i16,
}

extern "C" {
    /// The raw syscall binding, identical to the declaration in the
    /// real `libc` crate.
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: i32) -> i32;
}

/// Safe wrapper over [`poll`]: waits until one of `fds` is ready or
/// `timeout_ms` elapses (`-1` blocks indefinitely, `0` returns at
/// once). Returns the number of entries with non-zero `revents`.
/// `EINTR` is retried internally so callers never observe it.
pub fn poll_fds(fds: &mut [pollfd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd entries; the kernel writes only within
        // the `nfds` entries we report.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn zero_timeout_on_idle_socket_reports_nothing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [pollfd {
            fd: stream.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn readable_socket_reports_pollin() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.write_all(b"x").unwrap();
        let mut fds = [pollfd {
            fd: client.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn negative_fd_entries_are_ignored() {
        let mut fds = [pollfd {
            fd: -1,
            events: POLLIN,
            revents: 0x7fff,
        }];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
    }
}
