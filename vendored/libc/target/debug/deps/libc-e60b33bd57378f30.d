/root/repo/vendored/libc/target/debug/deps/libc-e60b33bd57378f30.d: src/lib.rs

/root/repo/vendored/libc/target/debug/deps/libc-e60b33bd57378f30: src/lib.rs

src/lib.rs:
