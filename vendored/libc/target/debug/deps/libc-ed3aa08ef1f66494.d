/root/repo/vendored/libc/target/debug/deps/libc-ed3aa08ef1f66494.d: src/lib.rs

/root/repo/vendored/libc/target/debug/deps/liblibc-ed3aa08ef1f66494.rlib: src/lib.rs

/root/repo/vendored/libc/target/debug/deps/liblibc-ed3aa08ef1f66494.rmeta: src/lib.rs

src/lib.rs:
