//! Offline stand-in for the `proptest` crate.
//!
//! Implements the property-testing API surface this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! integer-range / tuple / string-pattern / collection strategies,
//! [`prop_oneof!`], and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, deliberate for an offline shim:
//! cases are generated from a seed derived from the test's path (fully
//! deterministic run to run), and there is **no shrinking** — a failing
//! case reports the exact generated inputs instead.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Object-safe strategy used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// Uniform choice between strategies; built by [`crate::prop_oneof!`].
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given branches.
        ///
        /// # Panics
        /// If `branches` is empty.
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.branches.len() as u64) as usize;
            self.branches[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// String-pattern strategy: supports the `[class]{m,n}` shape this
    /// workspace uses (e.g. `"[a-z]{0,12}"`); other literals generate
    /// themselves verbatim.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_pattern(self) {
                Some((alphabet, lo, hi)) => {
                    let span = (hi - lo + 1) as u64;
                    let len = lo + (rng.next_u64() % span) as usize;
                    (0..len)
                        .map(|_| alphabet[(rng.next_u64() % alphabet.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_owned(),
            }
        }
    }

    /// Parse `[a-zXY]{m,n}` / `[a-z]{m}` into (alphabet, min, max).
    fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, counts) = rest.split_once(']')?;
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                alphabet.extend((lo..=hi).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((alphabet, lo, hi))
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// How many cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator backing every strategy (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `seed`.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Drives the cases of one property.
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner whose stream is a pure function of the property's
        /// path, so runs are reproducible without a seed file.
        pub fn new(_config: &ProptestConfig, name: &str) -> Self {
            // FNV-1a: stable across platforms and toolchains.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner {
                rng: TestRng::seed_from_u64(hash),
            }
        }

        /// The runner's generator.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declare property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0i64..10, v in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let values = (
                    $( $crate::strategy::Strategy::generate(&($strategy), runner.rng()), )+
                );
                let repr = format!("{values:?}");
                let ($($pat,)+) = values;
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with input {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        repr
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
        prop::collection::vec((0i64..6, -3i64..=3), 0..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vecs_in_bounds(v in pairs(), n in 1usize..4, b in any::<bool>()) {
            prop_assert!(v.len() < 12);
            for (a, s) in &v {
                prop_assert!((0..6).contains(a), "a = {a}");
                prop_assert!((-3..=3).contains(s));
            }
            prop_assert!((1..4).contains(&n));
            let _ = b;
        }

        #[test]
        fn oneof_and_strings(s in prop_oneof![
            "[a-z]{0,12}".prop_map(|s| s),
            (1i64..5).prop_map(|n| "x".repeat(n as usize)),
        ]) {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn mapped_tuples(t in ((0i64..6, 0i64..6), -3i64..=3).prop_map(|((a, b), s)| (a + b, s))) {
            prop_assert!((0..11).contains(&t.0));
        }
    }

    #[test]
    fn string_pattern_parses_class() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
