//! Offline stand-in for the `bytes` crate.
//!
//! The workspace vendors the small slice of the `bytes` API it actually
//! uses (cheap reference-counted byte buffers plus big-endian `Buf` /
//! `BufMut` cursors) so builds never touch the network. Semantics match
//! the real crate for that slice; anything else is intentionally absent.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into a reference-counted byte
/// buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing nothing but a static slice (copied here; the
    /// real crate aliases it, which callers cannot observe).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the viewed bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view sharing the same underlying allocation.
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read access to a byte cursor. All multi-byte reads are big-endian,
/// matching the real crate's `get_*` defaults used by this workspace.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Split off the next `len` bytes as an owned buffer.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Write access to a growable byte buffer. All multi-byte writes are
/// big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u32(0x0304_0506);
        w.put_u64(0x0708_090A_0B0C_0D0E);
        w.put_i64(-5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x0304_0506);
        assert_eq!(r.get_u64(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.copy_to_bytes(3).as_slice(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_and_bound_check() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.slice(1..3).as_slice(), &[2, 3]);
        assert_eq!(b.slice(..).len(), 4);
        assert_eq!(Bytes::from_static(&[9]).as_slice(), &[9]);
    }
}
