//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic subset this workspace uses: a seedable
//! [`rngs::StdRng`] plus [`Rng::gen_range`] / [`Rng::gen_bool`]. The
//! generator is SplitMix64 — not the real crate's ChaCha, so streams
//! differ from upstream `rand`, but every consumer here only relies on
//! determinism per seed, not on specific streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random word.
    fn next_u64(&mut self) -> u64;

    /// The next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa gives a uniform draw in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut c = StdRng::seed_from_u64(6);
        let xs: Vec<i64> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let ys: Vec<i64> = (0..16).map(|_| b.gen_range(0..1000)).collect();
        let zs: Vec<i64> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-3..7);
            assert!((-3..7).contains(&v));
            let u: usize = rng.gen_range(0..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
