//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking API surface this workspace uses —
//! groups, [`BenchmarkId`], [`Bencher::iter`], the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock sampler instead
//! of criterion's full statistical machinery. `--test` runs every
//! closure once (the CI smoke mode); a positional argument filters
//! benchmarks by substring, as with the real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo or the real criterion CLI may pass; the
                // sampler has no use for them.
                "--bench" | "--list" | "--quiet" | "--verbose" | "--noplot" => {}
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_owned()),
            }
        }
        Criterion {
            sample_size: 20,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id.label, f);
    }
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark one closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.criterion, &full, f);
    }

    /// Benchmark one closure against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Close the group. (The real crate emits summary plots here; the
    /// sampler prints per-benchmark lines as it goes.)
    pub fn finish(self) {}
}

/// Passed to the benchmark closure to drive timing.
pub struct Bencher {
    mode: BenchMode,
    samples: Vec<Duration>,
}

enum BenchMode {
    /// Run the routine once, untimed — the `--test` smoke mode.
    Smoke,
    /// Collect `samples` timed samples of `iters_per_sample` iterations.
    Timed {
        samples: usize,
        iters_per_sample: u64,
    },
}

impl Bencher {
    /// Time the routine (or run it once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(routine());
            }
            BenchMode::Timed {
                samples,
                iters_per_sample,
            } => {
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    self.samples.push(elapsed / iters_per_sample as u32);
                }
            }
        }
    }
}

/// Budget for one timed sample; keeps whole suites fast while still
/// averaging over enough iterations to be stable.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, mut f: F) {
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.test_mode {
        let mut b = Bencher {
            mode: BenchMode::Smoke,
            samples: Vec::new(),
        };
        f(&mut b);
        println!("Testing {label} ... ok");
        return;
    }

    // Calibrate: one untimed warm-up pass, then size samples so each
    // takes roughly TARGET_SAMPLE.
    let mut calib = Bencher {
        mode: BenchMode::Timed {
            samples: 1,
            iters_per_sample: 1,
        },
        samples: Vec::new(),
    };
    f(&mut calib);
    let per_iter = calib.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut b = Bencher {
        mode: BenchMode::Timed {
            samples: criterion.sample_size,
            iters_per_sample,
        },
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no iterations recorded)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declare a benchmark group function, mirroring the real crate's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
